"""SAJ: skyline-over-join via Fagin-style sorted access (paper §VI-A).

The paper describes SAJ (Koudas et al., VLDB 2006) as an extension of the
Fagin threshold framework (Fagin, Lotem & Naor, PODS 2001) following the
JF-SL paradigm.  This implementation:

1. sorts each source ascending by a monotone surrogate score (the sum of
   its derived-preference-normalised mapped attributes),
2. consumes both sorted lists round-robin ("sorted access"); each newly
   seen tuple is immediately joined against the already-seen tuples of the
   other source through a hash index ("random access"), with the mapped
   results maintained in an incremental skyline buffer,
3. after each round computes *threshold points*: interval lower bounds of
   every join result still involving at least one unseen tuple (suffix
   attribute minima make this sound regardless of the sort key),
4. emits a buffered result as soon as no threshold point can dominate it,
   and terminates sorted access early once some buffered result strictly
   dominates every threshold point.

Emission is correct and complete but heavily back-loaded — the blocking
behaviour the paper attributes to the JF-SL family.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from repro.baselines.pushthrough import derived_preference
from repro.query.smj import BoundQuery, ResultTuple
from repro.runtime.clock import VirtualClock
from repro.skyline.dominance import dominates, weakly_dominates
from repro.skyline.preferences import Direction
from repro.storage.sources.base import rows_of


class _SourceState:
    """Sorted-access state for one source."""

    __slots__ = (
        "rows", "join_index", "map_indices", "map_attrs",
        "suffix_min", "suffix_max", "frontier", "seen_by_key",
    )

    def __init__(self, rows, join_index, map_indices, map_attrs, sort_key):
        self.rows = sorted(rows, key=sort_key)
        self.join_index = join_index
        self.map_indices = tuple(map_indices)
        self.map_attrs = tuple(map_attrs)
        n = len(self.rows)
        # suffix_min[i][j]: minimum of mapped attribute j over rows[i:].
        self.suffix_min: list[tuple[float, ...]] = [()] * (n + 1)
        self.suffix_max: list[tuple[float, ...]] = [()] * (n + 1)
        inf = float("inf")
        cur_min = [inf] * len(self.map_indices)
        cur_max = [-inf] * len(self.map_indices)
        self.suffix_min[n] = tuple(cur_min)
        self.suffix_max[n] = tuple(cur_max)
        for i in range(n - 1, -1, -1):
            row = self.rows[i]
            for j, idx in enumerate(self.map_indices):
                v = row[idx]
                if v < cur_min[j]:
                    cur_min[j] = v
                if v > cur_max[j]:
                    cur_max[j] = v
            self.suffix_min[i] = tuple(cur_min)
            self.suffix_max[i] = tuple(cur_max)
        self.frontier = 0
        self.seen_by_key: dict = defaultdict(list)

    @property
    def exhausted(self) -> bool:
        return self.frontier >= len(self.rows)

    def unseen_bounds(self) -> dict[str, tuple[float, float]] | None:
        """Per-attribute bounds over the unseen suffix (``None`` if empty)."""
        if self.exhausted:
            return None
        lo = self.suffix_min[self.frontier]
        hi = self.suffix_max[self.frontier]
        return {a: (lo[j], hi[j]) for j, a in enumerate(self.map_attrs)}

    def full_bounds(self) -> dict[str, tuple[float, float]]:
        """Per-attribute bounds over the whole source."""
        lo = self.suffix_min[0]
        hi = self.suffix_max[0]
        return {a: (lo[j], hi[j]) for j, a in enumerate(self.map_attrs)}

    def advance(self):
        """Consume the next row under sorted access."""
        row = self.rows[self.frontier]
        self.frontier += 1
        self.seen_by_key[row[self.join_index]].append(row)
        return row


class _BufferEntry:
    __slots__ = ("vector", "lrow", "rrow", "mapped", "emitted", "alive")

    def __init__(self, vector, lrow, rrow, mapped):
        self.vector = vector
        self.lrow = lrow
        self.rrow = rrow
        self.mapped = mapped
        self.emitted = False
        self.alive = True


class SortedAccessJoin:
    """SAJ evaluation of an SMJ query."""

    name = "SAJ"

    def __init__(self, bound: BoundQuery, clock: VirtualClock) -> None:
        self.bound = bound
        self.clock = clock
        self.rounds_used = 0

    # ------------------------------------------------------------------
    def _sort_key(self, alias: str, table, map_attrs, map_indices):
        """Monotone surrogate score: derived-preference-normalised sum."""
        pref = derived_preference(self.bound, alias)
        signs = {}
        if pref is not None:
            for p in pref:
                signs[p.attribute] = 1.0 if p.direction is Direction.LOWEST else -1.0
        sign_list = [signs.get(a, 1.0) for a in map_attrs]
        idx_list = list(map_indices)
        def key(row):
            return sum(s * row[i] for s, i in zip(sign_list, idx_list))
        return key

    def _threats(self, left: _SourceState, right: _SourceState):
        """Lower-bound vectors of all join results involving unseen tuples."""
        bound = self.bound
        threats = []
        lu = left.unseen_bounds()
        ru = right.unseen_bounds()
        if lu is not None:
            lo, _ = bound.region_box(lu, right.full_bounds())
            threats.append(lo)
        if ru is not None:
            lo, _ = bound.region_box(left.full_bounds(), ru)
            threats.append(lo)
        return threats

    # ------------------------------------------------------------------
    def run(self) -> Iterator[ResultTuple]:
        bound = self.bound
        clock = self.clock

        left = _SourceState(
            rows_of(bound.left_table),
            bound.left_join_index,
            bound.left_map_indices,
            bound.left_map_attrs,
            self._sort_key(bound.left_alias, bound.left_table,
                           bound.left_map_attrs, bound.left_map_indices),
        )
        right = _SourceState(
            rows_of(bound.right_table),
            bound.right_join_index,
            bound.right_map_indices,
            bound.right_map_attrs,
            self._sort_key(bound.right_alias, bound.right_table,
                           bound.right_map_attrs, bound.right_map_indices),
        )
        clock.charge("sort_step", len(left.rows) + len(right.rows))

        buffer: list[_BufferEntry] = []

        def insert(lrow, rrow) -> None:
            mapped = bound.map_pair(lrow, rrow)
            clock.charge("map")
            vec = bound.vector_of(mapped)
            for entry in buffer:
                if not entry.alive:
                    continue
                clock.charge("dominance_cmp")
                if dominates(entry.vector, vec):
                    return
            for entry in buffer:
                if not entry.alive:
                    continue
                clock.charge("dominance_cmp")
                if dominates(vec, entry.vector):
                    entry.alive = False
            buffer.append(_BufferEntry(vec, lrow, rrow, mapped))

        while not (left.exhausted and right.exhausted):
            self.rounds_used += 1
            for state, other, is_left in ((left, right, True), (right, left, False)):
                if state.exhausted:
                    continue
                row = state.advance()
                partners = other.seen_by_key.get(row[state.join_index], ())
                clock.charge("join_probe")
                for partner in partners:
                    clock.charge("join_result")
                    if is_left:
                        insert(row, partner)
                    else:
                        insert(partner, row)

            threats = self._threats(left, right)
            # Emit every buffered survivor no future result can dominate.
            for entry in buffer:
                if not entry.alive or entry.emitted:
                    continue
                if any(weakly_dominates(t, entry.vector) for t in threats):
                    continue
                entry.emitted = True
                yield bound.make_result(entry.lrow, entry.rrow, entry.mapped)
            # Early termination: some buffered result strictly dominates
            # every threat corner, so no unseen tuple can contribute.
            if threats and buffer:
                def beaten(t):
                    return any(
                        e.alive and all(ev < tv for ev, tv in zip(e.vector, t))
                        for e in buffer
                    )
                if all(beaten(t) for t in threats):
                    break

        for entry in buffer:
            if entry.alive and not entry.emitted:
                entry.emitted = True
                yield bound.make_result(entry.lrow, entry.rrow, entry.mapped)
