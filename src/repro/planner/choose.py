"""The :class:`Planner`: estimates in, one :class:`PlanDecision` out.

``Planner.decide(bound)`` consults the statistics store (building or
patching summaries as the source tokens demand), runs the cost model over
a small candidate set of configurations, and returns a decision carrying:

* the chosen knobs — partitioner kind, grid granularity, vectorized batch
  size, filter strategy (SQLite push-down vs streamed filter), and a
  worker-count suggestion;
* **every estimate that informed the choice** (:class:`PlanEstimates`), so
  EXPLAIN can print estimate-vs-actual columns after the run;
* the query *fingerprint* under which post-run actuals feed back into the
  statistics store — the second plan over the same tables starts from the
  observed join/skyline cardinalities instead of the independence
  assumptions (``PlanEstimates.corrected`` marks such plans).

Knobs the caller pinned explicitly (a non-default ``partitioning``, an
explicit ``input_cells`` or ``batch_size``) are honoured, never
overridden: the planner fills the gaps the caller left open.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.planner.cost import CostModel
from repro.planner.statistics import (
    BYTES_PER_VALUE,
    JoinObservation,
    SourceStatistics,
    StatisticsStore,
)
from repro.storage.sources.filtered import conditions_fingerprint

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.query.smj import BoundQuery

#: Grid granularities the planner costs against each other.
GRANULARITY_CANDIDATES: tuple[int, ...] = (1, 2, 3, 4, 6, 8)
#: Vectorized batch sizes the planner may choose from.
BATCH_SIZE_CANDIDATES: tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096, 8192)
#: Histogram concentration above which the planner prefers the quadtree
#: (equi-width grids put skewed data into one overfull cell).
SKEW_THRESHOLD = 0.55


@dataclass
class PlanEstimates:
    """Every number the planner derived on the way to its decision.

    Example::

        decision = Planner().decide(bound)
        decision.estimates.join_rows        # expected join cardinality
        decision.estimates.costs[4]         # model cost of a 4-cell grid
    """

    rows_left: float
    rows_right: float
    base_rows_left: int
    base_rows_right: int
    selectivity_left: float
    selectivity_right: float
    bytes_scanned: float
    fanout_left: float
    fanout_right: float
    regions: float
    join_rows: float
    skyline_size: float
    skew: float
    #: Model cost per candidate granularity (the argmin was chosen).
    costs: dict[int, float] = field(default_factory=dict)
    #: True when run feedback corrected the cardinality estimates.
    corrected: bool = False


@dataclass
class PlanDecision:
    """The planner's output: chosen knobs + estimates + post-run actuals.

    ``actuals`` starts empty and is filled in two stages:
    :meth:`record_plan_actuals` during plan construction (rows scanned,
    partition counts, regions) and :meth:`record_run_actuals` at kernel
    finalize (join cardinality, skyline size) — the latter also feeds the
    observation back into the planner's statistics store.

    Example::

        engine = ProgXeEngine(bound, planner=Planner())
        results = list(engine.run())
        decision = engine.plan_decision
        decision.input_cells                 # what the planner chose
        decision.comparison()                # (metric, estimated, actual) rows
    """

    partitioning: str
    input_cells: int
    batch_size: int
    #: ``"push"`` (predicate push-down), ``"stream"`` (filter during the
    #: scan), or ``"auto"`` (the bind-time default; nothing to decide).
    filter_strategy: str
    #: Suggested worker count — advisory only, never applied implicitly
    #: (process pools are a caller-level resource decision).
    workers: int
    estimates: PlanEstimates
    fingerprint: tuple
    #: Names of knobs the caller pinned (honoured, not chosen).
    pinned: tuple[str, ...] = ()
    leaf_capacity: int | None = None
    actuals: dict[str, float] = field(default_factory=dict)
    _planner: "Planner | None" = field(default=None, repr=False)

    def record_plan_actuals(
        self,
        *,
        rows_left: int,
        rows_right: int,
        left_partitions: int,
        right_partitions: int,
        regions: int,
    ) -> None:
        """Record what planning actually produced (phase 0–2 actuals)."""
        self.actuals.update(
            rows_scanned=float(rows_left + rows_right),
            rows_left=float(rows_left),
            rows_right=float(rows_right),
            left_partitions=float(left_partitions),
            right_partitions=float(right_partitions),
            fanout=float(left_partitions * right_partitions),
            regions=float(regions),
        )

    def record_run_actuals(
        self, *, join_rows: float, skyline_size: float
    ) -> None:
        """Record execution actuals and feed them back into the store."""
        self.actuals.update(
            join_rows=float(join_rows), skyline_size=float(skyline_size)
        )
        if self._planner is not None:
            self._planner.observe(
                self.fingerprint,
                rows_left=self.actuals.get(
                    "rows_left", self.estimates.rows_left
                ),
                rows_right=self.actuals.get(
                    "rows_right", self.estimates.rows_right
                ),
                join_rows=float(join_rows),
                skyline_size=float(skyline_size),
                regions=self.actuals.get("regions", self.estimates.regions),
            )

    def comparison(self) -> list[tuple[str, float, float | None]]:
        """``(metric, estimated, actual)`` rows for the EXPLAIN report.

        ``actual`` is ``None`` for metrics whose run stage has not
        happened yet.
        """
        est = self.estimates
        rows = [
            ("rows scanned", est.rows_left + est.rows_right,
             self.actuals.get("rows_scanned")),
            ("partition fanout", est.fanout_left * est.fanout_right,
             self.actuals.get("fanout")),
            ("output regions", est.regions, self.actuals.get("regions")),
            ("join cardinality", est.join_rows,
             self.actuals.get("join_rows")),
            ("skyline size", est.skyline_size,
             self.actuals.get("skyline_size")),
        ]
        return rows

    def engine_overrides(self) -> dict:
        """The decision as ``QueryPlan.build`` keyword overrides."""
        return {
            "partitioning": self.partitioning,
            "input_cells": self.input_cells,
            "batch_size": self.batch_size,
            "leaf_capacity": self.leaf_capacity,
        }


class Planner:
    """Statistics-driven chooser of engine knobs (see the module docs).

    One planner instance accumulates state across queries: source
    summaries (token-validated) and run feedback keyed by query
    fingerprint.  Sessions hold one planner and pass it to every engine
    they build with the ``"auto"`` preset.

    Example::

        planner = Planner()
        decision = planner.decide(bound)
        decision.input_cells, decision.partitioning, decision.batch_size
        # after a run, actuals recorded via the kernel feed back in:
        planner.statistics.feedback_for(decision.fingerprint)
    """

    def __init__(
        self,
        *,
        statistics: StatisticsStore | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        self.statistics = statistics or StatisticsStore()
        self.cost_model = cost_model or CostModel()
        #: Every decision handed out, in order (introspection/tests).
        self.decisions: list[PlanDecision] = []

    # ------------------------------------------------------------------
    # the decision
    # ------------------------------------------------------------------
    def decide(
        self,
        bound: "BoundQuery",
        *,
        partitioning: str = "grid",
        input_cells: int | None = None,
        batch_size: int | None = None,
        use_vectorized: bool = True,
    ) -> PlanDecision:
        """Choose knobs for ``bound``; caller-pinned values are honoured.

        ``partitioning`` other than the ``"grid"`` default, a non-``None``
        ``input_cells`` or ``batch_size`` count as pinned.
        """
        model = self.cost_model
        left_base = getattr(bound, "left_base", bound.left_table)
        right_base = getattr(bound, "right_base", bound.right_table)
        left_stats = self.statistics.for_source(left_base)
        right_stats = self.statistics.for_source(right_base)
        query = bound.query
        left_conditions = [
            f for f in query.filters if f.alias == bound.left_alias
        ]
        right_conditions = [
            f for f in query.filters if f.alias == bound.right_alias
        ]
        selectivity_left = left_stats.selectivity(left_conditions)
        selectivity_right = right_stats.selectivity(right_conditions)
        rows_left = left_stats.estimated_rows(left_conditions)
        rows_right = right_stats.estimated_rows(right_conditions)
        dims = bound.skyline_dimension_count
        join_rows = model.join_cardinality(
            left_stats, right_stats,
            query.join.left_attr, query.join.right_attr,
            rows_left=rows_left, rows_right=rows_right,
        )
        fingerprint = self._fingerprint(bound, left_base, right_base)
        observation = self.statistics.feedback_for(fingerprint)
        corrected = False
        skyline_size = model.skyline_size(join_rows, dims)
        if observation is not None:
            join_rows, skyline_size = self._corrected_estimates(
                observation, rows_left, rows_right, dims
            )
            corrected = True

        pinned: list[str] = []
        if partitioning != "grid":
            pinned.append("partitioning")
        elif self._should_quadtree(left_stats, right_stats, bound):
            partitioning = "quadtree"

        scan_left = model.scan_cost(left_base.kind)
        scan_right = model.scan_cost(right_base.kind)
        signed_left = left_stats.mean_correlation(bound.left_map_attrs)
        signed_right = right_stats.mean_correlation(bound.right_map_attrs)
        # Mapped outputs are per-dimension sums, so the output-space
        # correlation tracks the mean of the per-side input correlations.
        signed = (signed_left + signed_right) / 2.0
        corr_left = abs(signed_left)
        corr_right = abs(signed_right)
        costs: dict[int, float] = {}
        best_cells, best_fanouts = None, (1.0, 1.0)
        for cells in GRANULARITY_CANDIDATES:
            fanout_left = model.partition_fanout(
                left_stats, bound.left_map_attrs, cells, rows=rows_left,
                correlation=corr_left,
            )
            fanout_right = model.partition_fanout(
                right_stats, bound.right_map_attrs, cells, rows=rows_right,
                correlation=corr_right,
            )
            cost = model.plan_cost(
                rows_left=rows_left,
                rows_right=rows_right,
                fanout_left=fanout_left,
                fanout_right=fanout_right,
                join_rows=join_rows,
                dims=dims,
                scan_left=scan_left,
                scan_right=scan_right,
                skyline=skyline_size,
                correlation=signed,
            )
            costs[cells] = cost
            if best_cells is None or cost < costs[best_cells]:
                best_cells, best_fanouts = cells, (fanout_left, fanout_right)
        if input_cells is not None:
            pinned.append("input_cells")
            chosen_cells = input_cells
            fanout_left = model.partition_fanout(
                left_stats, bound.left_map_attrs, chosen_cells, rows=rows_left,
                correlation=corr_left,
            )
            fanout_right = model.partition_fanout(
                right_stats, bound.right_map_attrs, chosen_cells,
                rows=rows_right, correlation=corr_right,
            )
        else:
            chosen_cells = best_cells or GRANULARITY_CANDIDATES[0]
            fanout_left, fanout_right = best_fanouts
        regions = fanout_left * fanout_right

        if batch_size is not None:
            pinned.append("batch_size")
            chosen_batch = batch_size
        else:
            chosen_batch = self._choose_batch_size(
                join_rows, regions, use_vectorized
            )

        filter_strategy = self._choose_filter_strategy(
            left_base, right_base, left_conditions, right_conditions,
            selectivity_left, selectivity_right,
        )

        estimates = PlanEstimates(
            rows_left=rows_left,
            rows_right=rows_right,
            base_rows_left=left_stats.row_count,
            base_rows_right=right_stats.row_count,
            selectivity_left=selectivity_left,
            selectivity_right=selectivity_right,
            bytes_scanned=(
                model.bytes_scanned(left_stats)
                + model.bytes_scanned(right_stats)
            ),
            fanout_left=fanout_left,
            fanout_right=fanout_right,
            regions=regions,
            join_rows=join_rows,
            skyline_size=skyline_size,
            skew=max(
                left_stats.skew(bound.left_map_attrs),
                right_stats.skew(bound.right_map_attrs),
            ),
            costs=costs,
            corrected=corrected,
        )
        decision = PlanDecision(
            partitioning=partitioning,
            input_cells=chosen_cells,
            batch_size=chosen_batch,
            filter_strategy=filter_strategy,
            workers=self._suggest_workers(join_rows),
            estimates=estimates,
            fingerprint=fingerprint,
            pinned=tuple(pinned),
            _planner=self,
        )
        self.decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def observe(
        self,
        fingerprint: tuple,
        *,
        rows_left: float,
        rows_right: float,
        join_rows: float,
        skyline_size: float,
        regions: float,
    ) -> None:
        """Record one run's actuals for ``fingerprint`` (latest wins)."""
        self.statistics.record_feedback(
            fingerprint,
            JoinObservation(
                rows_left=rows_left,
                rows_right=rows_right,
                join_rows=join_rows,
                skyline_size=skyline_size,
                regions=regions,
            ),
        )

    def _corrected_estimates(
        self,
        observation: JoinObservation,
        rows_left: float,
        rows_right: float,
        dims: int,
    ) -> tuple[float, float]:
        """Scale an observation to the current input cardinalities."""
        observed_product = max(
            observation.rows_left * observation.rows_right, 1.0
        )
        scale = (rows_left * rows_right) / observed_product
        join_rows = max(1.0, observation.join_rows * scale)
        if abs(scale - 1.0) < 1e-9:
            skyline = max(1.0, observation.skyline_size)
        else:
            skyline = self.cost_model.skyline_size(join_rows, dims)
        return join_rows, skyline

    # ------------------------------------------------------------------
    # individual choices
    # ------------------------------------------------------------------
    def _should_quadtree(
        self,
        left: SourceStatistics,
        right: SourceStatistics,
        bound: "BoundQuery",
    ) -> bool:
        """Prefer the adaptive quadtree when the mapped space is skewed."""
        skew = max(
            left.skew(bound.left_map_attrs),
            right.skew(bound.right_map_attrs),
        )
        return skew >= SKEW_THRESHOLD

    def _choose_batch_size(
        self, join_rows: float, regions: float, use_vectorized: bool
    ) -> int:
        """Batch near the expected per-region pair count (fewer partial
        flushes without buffering past the region's own output)."""
        if not use_vectorized:
            return BATCH_SIZE_CANDIDATES[-4]  # scalar path ignores it
        pairs_per_region = join_rows / max(regions, 1.0)
        for candidate in BATCH_SIZE_CANDIDATES:
            if candidate >= pairs_per_region:
                return candidate
        return BATCH_SIZE_CANDIDATES[-1]

    def _choose_filter_strategy(
        self,
        left_base,
        right_base,
        left_conditions: Sequence,
        right_conditions: Sequence,
        selectivity_left: float,
        selectivity_right: float,
    ) -> str:
        """Push-down vs streamed filter, by backend and selectivity.

        Only meaningful when a filtered side supports ``apply_filters``
        (SQLite).  Push-down wins whenever the filter actually drops rows
        — the database skips materialising them; a filter that keeps
        (nearly) everything is pure per-row WHERE overhead, so the scan
        streams instead.  ``"auto"`` when there is nothing to decide.
        """
        pushable = (
            (left_conditions and hasattr(left_base, "apply_filters"))
            or (right_conditions and hasattr(right_base, "apply_filters"))
        )
        if not pushable:
            return "auto"
        keep = min(
            selectivity_left if left_conditions else 1.0,
            selectivity_right if right_conditions else 1.0,
        )
        return "stream" if keep >= 0.95 else "push"

    def _suggest_workers(self, join_rows: float) -> int:
        """Advisory worker count for the sharded kernel."""
        if join_rows >= 1_000_000:
            return 4
        if join_rows >= 200_000:
            return 2
        return 1

    def _fingerprint(
        self, bound: "BoundQuery", left_base, right_base
    ) -> tuple:
        query = bound.query
        return (
            left_base.uid,
            right_base.uid,
            query.join.left_attr,
            query.join.right_attr,
            conditions_fingerprint(query.filters),
            bound.skyline_dimension_count,
        )

    # ------------------------------------------------------------------
    # scheduler support
    # ------------------------------------------------------------------
    def table_footprint(self, source: Any) -> float:
        """Estimated bytes of ``source`` — **without scanning it**.

        Uses a cached summary when the store holds one; otherwise falls
        back to ``len(source) * columns * 8`` from schema metadata.  The
        cache-aware scheduler admission policy sums these to score table
        overlap between queries.
        """
        cached = self.statistics.cached(source)
        if cached is not None:
            return cached.estimated_bytes()
        try:
            rows = len(source)
            columns = len(source.schema.columns)
        except (AttributeError, TypeError):
            return 0.0
        return float(rows) * columns * BYTES_PER_VALUE
