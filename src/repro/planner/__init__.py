"""Statistics-driven cost-based planning and self-tuning.

Every engine knob the reproduction has grown — partitioner choice, grid
granularity, vectorized batch size, SQLite push-down vs streamed filters,
worker count — is caller-picked by default.  This package closes the
loop: :func:`collect_statistics` summarises sources in one sampled scan,
the :class:`CostModel` turns summaries into work estimates, and the
:class:`Planner` picks the knobs, records every estimate on its
:class:`PlanDecision`, and learns from post-run actuals.

Entry points::

    engine = ProgXeEngine(bound, planner=Planner())      # engine level
    stream = session.execute(bound, config="auto")        # session preset
    repro.explain_estimates(bound)                        # estimate vs actual
"""

from repro.planner.choose import (
    BATCH_SIZE_CANDIDATES,
    GRANULARITY_CANDIDATES,
    PlanDecision,
    PlanEstimates,
    Planner,
)
from repro.planner.cost import (
    DEFAULT_SCAN_COSTS,
    CostModel,
    calibrated_scan_costs,
)
from repro.planner.statistics import (
    ColumnStatistics,
    JoinObservation,
    SourceStatistics,
    StatisticsCounters,
    StatisticsStore,
    collect_statistics,
)

__all__ = [
    "BATCH_SIZE_CANDIDATES",
    "GRANULARITY_CANDIDATES",
    "PlanDecision",
    "PlanEstimates",
    "Planner",
    "DEFAULT_SCAN_COSTS",
    "CostModel",
    "calibrated_scan_costs",
    "ColumnStatistics",
    "JoinObservation",
    "SourceStatistics",
    "StatisticsCounters",
    "StatisticsStore",
    "collect_statistics",
]
