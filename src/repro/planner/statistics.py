"""Per-source statistics: the input side of the cost-based planner.

A :class:`SourceStatistics` summarises one :class:`~repro.storage.sources
.base.DataSource` from a **single sampled batch scan**: row count,
per-column min/max, number-of-distinct-values (NDV) estimates, and
equi-width histograms over a bounded row sample.  The summaries are what
the :class:`~repro.planner.cost.CostModel` consumes to estimate bytes
scanned, partition fanout, filter selectivity and join cardinality before
a single tuple of real work runs.

The :class:`StatisticsStore` caches summaries per source ``uid`` and
validates them with the source's ``cache_token`` — the same
``(uid, version, row_count)`` identity the partition cache uses:

* token unchanged → **hit**, no scan at all;
* token changed but the source proves an append-only delta
  (:func:`~repro.storage.sources.base.delta_start_row`) → **patch**: only
  the appended suffix is scanned and folded into the existing summary;
* anything else (out-of-band mutation, unknown source) → **rebuild**.

The store also holds the planner's *feedback* memory: after a run, actual
join/skyline cardinalities are recorded per query fingerprint
(:meth:`StatisticsStore.record_feedback`), so the next plan over the same
tables starts from observed numbers instead of independence assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Number
from typing import Any, Iterable, Sequence

from repro.storage.sources.base import DataSource, delta_start_row

#: Rows summarised per source build; one scan stops after this many.
DEFAULT_SAMPLE_ROWS = 4096
#: Equi-width histogram resolution per numeric column.
DEFAULT_BINS = 16
#: Distinct values tracked exactly per column before the NDV estimator
#: switches to sample-scaled mode.
NDV_TRACK_LIMIT = 4096
#: Estimated storage footprint per column value (float64-ish).
BYTES_PER_VALUE = 8.0
#: Numeric columns whose pairwise moments are tracked for correlation
#: estimates; bounds the O(k²) cross-product accumulators.
MOMENT_COLUMN_LIMIT = 8


def _is_number(value: Any) -> bool:
    return isinstance(value, Number) and not isinstance(value, bool)


@dataclass
class ColumnStatistics:
    """Summary of one column: bounds, NDV, and an equi-width histogram.

    Histogram bucket edges are fixed when the column is first summarised;
    values arriving through a streaming *patch* that fall outside the
    original ``[minimum, maximum]`` range clamp into the boundary buckets
    (the summary stays approximate but never loses mass).  Non-numeric
    columns track only distinct values — ``histogram`` stays empty and
    range selectivities fall back to a neutral guess.

    Example::

        stats = collect_statistics(table).column("price")
        stats.ndv                       # distinct-value estimate
        stats.selectivity("<=", 40.0)   # histogram-interpolated fraction
    """

    name: str
    numeric: bool = True
    minimum: float | None = None
    maximum: float | None = None
    histogram: list[int] = field(default_factory=list)
    #: Bucket edges backing ``histogram`` (fixed at build time).
    lo: float = 0.0
    hi: float = 0.0
    #: Rows folded into this summary so far.
    sampled: int = 0
    #: Distinct values seen in the sample (capped at NDV_TRACK_LIMIT).
    distinct: set = field(default_factory=set)
    saturated: bool = False

    def ndv(self, row_count: int) -> float:
        """Distinct-value estimate scaled to the full relation.

        Exact while the tracker has not saturated and the sample covered
        every row; otherwise the sample's distinct ratio is extrapolated
        linearly (capped at ``row_count``).
        """
        seen = len(self.distinct)
        if seen == 0:
            return 1.0
        if not self.saturated and self.sampled >= row_count:
            return float(seen)
        ratio = seen / max(self.sampled, 1)
        return max(float(seen), min(float(row_count), ratio * row_count))

    # ------------------------------------------------------------------
    # construction / patching
    # ------------------------------------------------------------------
    def _track_distinct(self, value: Any) -> None:
        if self.saturated:
            return
        self.distinct.add(value)
        if len(self.distinct) > NDV_TRACK_LIMIT:
            self.saturated = True

    def _bucket(self, value: float) -> int:
        span = self.hi - self.lo
        if span <= 0.0 or not self.histogram:
            return 0
        index = int((value - self.lo) / span * len(self.histogram))
        return min(max(index, 0), len(self.histogram) - 1)

    def seed(self, values: Sequence[Any], bins: int) -> None:
        """Build the summary from the initial sample (fixes bucket edges)."""
        for value in values:
            self._track_distinct(value)
        numbers = [float(v) for v in values if _is_number(v)]
        self.sampled = len(values)
        if not numbers:
            self.numeric = False
            return
        self.numeric = True
        self.minimum = min(numbers)
        self.maximum = max(numbers)
        self.lo, self.hi = self.minimum, self.maximum
        self.histogram = [0] * max(1, bins)
        for value in numbers:
            self.histogram[self._bucket(value)] += 1

    def patch(self, values: Iterable[Any]) -> None:
        """Fold appended values in: extend bounds, clamp into fixed buckets."""
        for value in values:
            self.sampled += 1
            self._track_distinct(value)
            if self.numeric and _is_number(value):
                value = float(value)
                if self.minimum is None or value < self.minimum:
                    self.minimum = value
                if self.maximum is None or value > self.maximum:
                    self.maximum = value
                if self.histogram:
                    self.histogram[self._bucket(value)] += 1

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def fraction_below(self, threshold: float, *, inclusive: bool) -> float:
        """Estimated fraction of values ``<`` (or ``<=``) ``threshold``."""
        if not self.numeric or self.minimum is None or self.maximum is None:
            return 0.5
        if threshold < self.minimum:
            return 0.0
        if threshold > self.maximum or (inclusive and threshold == self.maximum):
            return 1.0
        total = sum(self.histogram)
        if total == 0 or self.hi <= self.lo:
            return 0.5
        width = (self.hi - self.lo) / len(self.histogram)
        position = (threshold - self.lo) / width
        full = int(position)
        below = sum(self.histogram[:full])
        if full < len(self.histogram):
            # Linear interpolation inside the straddled bucket.
            below += self.histogram[full] * (position - full)
        return min(1.0, max(0.0, below / total))

    def selectivity(self, op: str, literal: Any) -> float:
        """Estimated fraction of rows matching ``column <op> literal``.

        Range operators interpolate the histogram; equality uses ``1/NDV``
        over the tracked distinct set; ``in`` scales equality by the
        literal count; ``contains`` (substring) has no summary to consult
        and returns a neutral ½.  Results are clamped to ``[1e-4, 1.0]``
        so downstream cardinalities never collapse to zero.
        """
        ndv = max(len(self.distinct), 1)
        if op == "=":
            hit = 1.0 if literal in self.distinct or self.saturated else 0.5
            estimate = hit / ndv
        elif op == "!=":
            estimate = 1.0 - 1.0 / ndv
        elif op == "in":
            try:
                k = len(literal)
            except TypeError:
                k = 1
            estimate = min(1.0, k / ndv)
        elif op in ("<", "<="):
            if not _is_number(literal):
                return 0.5
            estimate = self.fraction_below(float(literal), inclusive=op == "<=")
        elif op in (">", ">="):
            if not _is_number(literal):
                return 0.5
            estimate = 1.0 - self.fraction_below(
                float(literal), inclusive=op == ">"
            )
        else:  # "contains" and anything the parser grows later
            estimate = 0.5
        return min(1.0, max(1e-4, estimate))

    def concentration(self) -> float:
        """Largest single-bucket share — the planner's skew signal.

        ``1/bins`` for perfectly uniform data, approaching ``1.0`` when the
        sample piles into one bucket.  Non-numeric columns report uniform.
        """
        total = sum(self.histogram)
        if total == 0 or not self.histogram:
            return 0.0
        return max(self.histogram) / total


@dataclass
class SourceStatistics:
    """One source's summary: the unit the :class:`StatisticsStore` caches.

    Example::

        stats = collect_statistics(table)
        stats.row_count
        stats.selectivity([FilterCondition("R", "price", "<=", 40.0)])
        stats.estimated_bytes()
    """

    uid: Any
    kind: str
    token: tuple
    row_count: int
    sampled_rows: int
    columns: dict[str, ColumnStatistics]
    column_count: int
    #: Numeric columns whose pairwise moments are accumulated (capped at
    #: MOMENT_COLUMN_LIMIT — correlation() answers 0.0 for the rest).
    moment_names: tuple[str, ...] = ()
    moment_count: int = 0
    moment_sums: dict[str, float] = field(default_factory=dict)
    moment_sumsq: dict[str, float] = field(default_factory=dict)
    moment_prods: dict[tuple[str, str], float] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics | None:
        """The named column's summary (``None`` for unknown columns)."""
        return self.columns.get(name)

    def selectivity(self, conditions: Sequence) -> float:
        """Combined selectivity of local filters (independence assumption)."""
        estimate = 1.0
        for condition in conditions:
            stats = self.columns.get(condition.attribute)
            if stats is None:
                estimate *= 0.5
            else:
                estimate *= stats.selectivity(condition.op, condition.literal)
        return min(1.0, max(1e-4, estimate))

    def estimated_rows(self, conditions: Sequence = ()) -> float:
        """Expected surviving rows after ``conditions``."""
        return max(1.0, self.row_count * self.selectivity(conditions))

    def estimated_bytes(self) -> float:
        """Approximate storage footprint of the full relation."""
        return self.row_count * self.column_count * BYTES_PER_VALUE

    def key_ndv(self, attribute: str) -> float:
        """NDV of a join-key column (``1`` when unknown)."""
        stats = self.columns.get(attribute)
        if stats is None:
            return 1.0
        return stats.ndv(self.row_count)

    def skew(self, attributes: Sequence[str]) -> float:
        """Worst histogram concentration across ``attributes``."""
        scores = [
            self.columns[a].concentration()
            for a in attributes
            if a in self.columns
        ]
        return max(scores) if scores else 0.0

    # ------------------------------------------------------------------
    # pairwise moments / correlation
    # ------------------------------------------------------------------
    def fold_moments(
        self, rows: Iterable[Sequence[Any]], schema_columns: Sequence[str]
    ) -> None:
        """Accumulate sums, squares and cross-products over ``rows``.

        Rows where any tracked column is non-numeric are skipped whole so
        every accumulator covers the same row set (a requirement for the
        Pearson estimate in :meth:`correlation`).
        """
        if not self.moment_names:
            return
        positions = [
            (name, schema_columns.index(name)) for name in self.moment_names
        ]
        pairs = [
            (a, b)
            for i, a in enumerate(self.moment_names)
            for b in self.moment_names[i + 1:]
        ]
        for row in rows:
            values = {}
            for name, index in positions:
                value = row[index]
                if not _is_number(value):
                    values = None
                    break
                values[name] = float(value)
            if values is None:
                continue
            self.moment_count += 1
            for name, value in values.items():
                self.moment_sums[name] = self.moment_sums.get(name, 0.0) + value
                self.moment_sumsq[name] = (
                    self.moment_sumsq.get(name, 0.0) + value * value
                )
            for a, b in pairs:
                self.moment_prods[(a, b)] = (
                    self.moment_prods.get((a, b), 0.0) + values[a] * values[b]
                )

    def correlation(self, a: str, b: str) -> float:
        """Sampled Pearson correlation of columns ``a`` and ``b``.

        ``0.0`` whenever the estimate is undefined — untracked columns,
        fewer than two complete rows, or a degenerate (constant) column —
        so callers can treat the answer as "no known linear dependence".
        """
        if a == b:
            return 1.0 if a in self.moment_names else 0.0
        key = (a, b) if (a, b) in self.moment_prods else (b, a)
        if key not in self.moment_prods or self.moment_count < 2:
            return 0.0
        n = float(self.moment_count)
        cov = self.moment_prods[key] - self.moment_sums[a] * self.moment_sums[b] / n
        var_a = self.moment_sumsq[a] - self.moment_sums[a] ** 2 / n
        var_b = self.moment_sumsq[b] - self.moment_sums[b] ** 2 / n
        if var_a <= 0.0 or var_b <= 0.0:
            return 0.0
        r = cov / (var_a * var_b) ** 0.5
        return min(1.0, max(-1.0, r))

    def mean_correlation(self, attributes: Sequence[str]) -> float:
        """Mean signed ``r`` over all pairs of ``attributes`` (0.0 if < 2).

        The sign is the planner's pruning signal: positively correlated
        skyline dimensions concentrate dominance (regions prune each
        other), anticorrelated dimensions spread the skyline along the
        anti-diagonal where no region dominates another.
        """
        scores = self._pair_correlations(attributes)
        return sum(scores) / len(scores) if scores else 0.0

    def mean_abs_correlation(self, attributes: Sequence[str]) -> float:
        """Mean ``|r|`` over all pairs of ``attributes`` (0.0 if < 2)."""
        scores = self._pair_correlations(attributes)
        return sum(abs(s) for s in scores) / len(scores) if scores else 0.0

    def _pair_correlations(self, attributes: Sequence[str]) -> list[float]:
        tracked = [a for a in attributes if a in self.moment_names]
        return [
            self.correlation(a, b)
            for i, a in enumerate(tracked)
            for b in tracked[i + 1:]
        ]


def collect_statistics(
    source: DataSource,
    *,
    sample_rows: int = DEFAULT_SAMPLE_ROWS,
    bins: int = DEFAULT_BINS,
) -> SourceStatistics:
    """Summarise ``source`` in one sampled batch scan.

    All schema columns are summarised, so one summary serves any query
    over the source.  The scan stops after ``sample_rows`` rows; the exact
    row count comes from ``len(source)`` (metadata, not a scan).

    Example::

        stats = collect_statistics(table, sample_rows=1024)
        stats.column("a0").histogram
    """
    schema_columns = tuple(source.schema.columns)
    token = source.cache_token
    row_count = len(source)
    sample: list[tuple] = []
    for batch in source.scan_batches():
        sample.extend(batch.rows)
        if len(sample) >= sample_rows:
            del sample[sample_rows:]
            break
    columns: dict[str, ColumnStatistics] = {}
    for index, name in enumerate(schema_columns):
        column = ColumnStatistics(name=name)
        column.seed([row[index] for row in sample], bins)
        columns[name] = column
    tracked = tuple(
        name for name in schema_columns if columns[name].numeric
    )[:MOMENT_COLUMN_LIMIT]
    stats = SourceStatistics(
        uid=source.uid,
        kind=source.kind,
        token=token,
        row_count=row_count,
        sampled_rows=len(sample),
        columns=columns,
        column_count=len(schema_columns),
        moment_names=tracked,
    )
    stats.fold_moments(sample, schema_columns)
    return stats


@dataclass(frozen=True)
class JoinObservation:
    """Actuals from one finished run, keyed by query fingerprint.

    ``rows_left`` / ``rows_right`` are the (filtered) input cardinalities
    the observation was taken at, so later plans over grown tables can
    scale ``join_rows`` instead of replaying it verbatim.
    """

    rows_left: float
    rows_right: float
    join_rows: float
    skyline_size: float
    regions: float


@dataclass(frozen=True)
class StatisticsCounters:
    """Cache-outcome counters of a :class:`StatisticsStore` (plain data)."""

    hits: int
    patches: int
    rebuilds: int
    entries: int
    feedback_entries: int


class StatisticsStore:
    """Token-validated cache of :class:`SourceStatistics` plus feedback.

    Example::

        store = StatisticsStore()
        stats = store.for_source(table)      # scan + summarise
        stats = store.for_source(table)      # token unchanged: cache hit
        table.extend_rows(new_rows)
        stats = store.for_source(table)      # append proven: patch, not rebuild
        store.counters().patches             # 1
    """

    def __init__(
        self,
        *,
        sample_rows: int = DEFAULT_SAMPLE_ROWS,
        bins: int = DEFAULT_BINS,
        max_entries: int = 128,
    ) -> None:
        self.sample_rows = sample_rows
        self.bins = bins
        self.max_entries = max_entries
        self._entries: dict[Any, SourceStatistics] = {}
        self._feedback: dict[Any, JoinObservation] = {}
        self.hits = 0
        self.patches = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # source summaries
    # ------------------------------------------------------------------
    def for_source(self, source: DataSource) -> SourceStatistics:
        """The source's summary: cached, patched, or rebuilt as the token
        demands (see the module docstring for the three-way split)."""
        uid = source.uid
        held = self._entries.get(uid)
        token = source.cache_token
        if held is not None:
            if held.token == token:
                self.hits += 1
                return held
            patched = self._try_patch(source, held)
            if patched is not None:
                self.patches += 1
                return patched
        built = collect_statistics(
            source, sample_rows=self.sample_rows, bins=self.bins
        )
        self.rebuilds += 1
        self._remember(uid, built)
        return built

    def _try_patch(
        self, source: DataSource, held: SourceStatistics
    ) -> SourceStatistics | None:
        """Fold an append-only delta into ``held``; ``None`` if unprovable."""
        start = delta_start_row(source, held.token)
        if start is None:
            return None
        try:
            batches = source.scan_batches(since_version=held.token)
            names = tuple(source.schema.columns)
            for batch in batches:
                for index, name in enumerate(names):
                    column = held.columns.get(name)
                    if column is not None:
                        column.patch(row[index] for row in batch.rows)
                held.fold_moments(batch.rows, names)
        except TypeError:
            # The source proved the delta but cannot scan a suffix (no
            # since_version support): a rebuild is the only safe answer.
            return None
        held.token = source.cache_token
        held.row_count = len(source)
        held.sampled_rows = min(held.sampled_rows + (len(source) - start),
                                len(source))
        return held

    def invalidate(self, source_or_uid: Any) -> None:
        """Drop a cached summary (by source or raw uid)."""
        uid = getattr(source_or_uid, "uid", source_or_uid)
        self._entries.pop(uid, None)

    def _remember(self, uid: Any, stats: SourceStatistics) -> None:
        self._entries[uid] = stats
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))

    def cached(self, source_or_uid: Any) -> SourceStatistics | None:
        """The cached summary if present (no scan, no validation)."""
        uid = getattr(source_or_uid, "uid", source_or_uid)
        return self._entries.get(uid)

    # ------------------------------------------------------------------
    # run feedback
    # ------------------------------------------------------------------
    def record_feedback(
        self, fingerprint: Any, observation: JoinObservation
    ) -> None:
        """Store post-run actuals for ``fingerprint`` (latest wins)."""
        self._feedback[fingerprint] = observation
        while len(self._feedback) > self.max_entries:
            self._feedback.pop(next(iter(self._feedback)))

    def feedback_for(self, fingerprint: Any) -> JoinObservation | None:
        """The latest observation recorded for ``fingerprint``, if any."""
        return self._feedback.get(fingerprint)

    def counters(self) -> StatisticsCounters:
        """Hit/patch/rebuild counters plus entry counts (plain data)."""
        return StatisticsCounters(
            hits=self.hits,
            patches=self.patches,
            rebuilds=self.rebuilds,
            entries=len(self._entries),
            feedback_entries=len(self._feedback),
        )
