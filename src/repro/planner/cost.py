"""The planner's cost model: estimates over statistics, no tuple touched.

Every formula here is a pre-execution estimate of work the virtual clock
will charge for later, derived from :class:`~repro.planner.statistics
.SourceStatistics` summaries:

* **bytes scanned** — footprint of the rows planning will pass over;
* **partition fanout** — expected number of *occupied* grid cells per
  source at a candidate granularity (per-dimension histogram masses give
  per-cell occupancy probabilities; the balls-in-bins expectation
  ``sum(1 - (1 - p_cell)^n)`` counts cells that receive at least one row);
* **expected join cardinality** — the classical ``n_l * n_r / max(ndv)``
  equi-join estimate over the join-key NDVs;
* **expected skyline size** — paper Eq. 1 via
  :func:`repro.skyline.estimate.expected_skyline_size`, total and
  per-region.

Backend scan-cost constants translate logical rows into relative scan
effort (an mmap-backed or SQLite scan costs more per row than a resident
list).  :func:`calibrated_scan_costs` measures them **once per process**
by timing tiny scans over each backend; the default :class:`CostModel`
uses fixed constants so planning stays deterministic unless calibration is
requested explicitly (``CostModel.calibrated()``).
"""

from __future__ import annotations

import math
import sqlite3
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.planner.statistics import SourceStatistics
from repro.skyline.estimate import expected_skyline_size

#: Relative per-row scan effort by backend ``kind`` (memory = 1).  The
#: fixed defaults keep planning deterministic; ``CostModel.calibrated()``
#: replaces them with constants measured once per process.
DEFAULT_SCAN_COSTS: Mapping[str, float] = {
    "memory": 1.0,
    "columnar": 1.4,
    "sqlite": 2.8,
}
#: Scan constant for unknown / composite backends (e.g. ``sqlite+filter``).
FALLBACK_SCAN_COST = 1.6

_CALIBRATION_CACHE: dict[int, dict[str, float]] = {}


def calibrated_scan_costs(rows: int = 2048) -> dict[str, float]:
    """Per-backend scan constants measured once per process.

    Builds a tiny two-column relation on each backend (in-memory list,
    columnar file in a scratch directory, in-memory SQLite database),
    times one full batch scan of each, and normalises to ``memory = 1``.
    The result is cached per process — calibration is wall-clock work and
    must not run per query.  Any failure (read-only filesystem, missing
    backend) falls back to :data:`DEFAULT_SCAN_COSTS` for the backends
    that could not be measured.

    Example::

        costs = calibrated_scan_costs()
        CostModel(scan_costs=costs)
    """
    cached = _CALIBRATION_CACHE.get(rows)
    if cached is not None:
        return cached
    costs = dict(DEFAULT_SCAN_COSTS)
    try:
        costs.update(_measure_scan_costs(rows))
    except (OSError, RuntimeError, sqlite3.Error):
        # pragma: no cover - environment-dependent (read-only fs, missing
        # backend); the fixed defaults stand in for unmeasurable backends.
        pass
    _CALIBRATION_CACHE[rows] = costs
    return costs


def _measure_scan_costs(rows: int) -> dict[str, float]:
    """Time one scan per backend; normalise to the memory backend."""
    import shutil
    import sqlite3
    import tempfile
    import time

    from repro.storage.sources.sqlite import SQLiteSource
    from repro.storage.table import Table
    from repro.storage.sources.columnar import (
        ColumnarFileSource,
        write_columnar,
    )

    table = Table.from_rows(
        "calib", ["a0", "jkey"],
        [(float(i % 97), i % 13) for i in range(rows)],
    )

    def scan_seconds(source) -> float:
        best = math.inf
        for _ in range(3):
            t0 = time.perf_counter()
            for batch in source.scan_batches():
                batch.rows
            best = min(best, time.perf_counter() - t0)
        return max(best, 1e-9)

    measured = {"memory": scan_seconds(table)}
    scratch = tempfile.mkdtemp(prefix="repro-calibrate-")
    try:
        path = write_columnar(f"{scratch}/calib.col", table)
        columnar = ColumnarFileSource(path)
        measured["columnar"] = scan_seconds(columnar)
        del columnar
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    connection = sqlite3.connect(":memory:")
    try:
        SQLiteSource.write_table(connection, "calib", table)
        measured["sqlite"] = scan_seconds(
            SQLiteSource(connection, table="calib")
        )
    finally:
        connection.close()
    base = measured["memory"]
    return {kind: max(1.0, seconds / base) for kind, seconds in measured.items()}


@dataclass(frozen=True)
class CostModel:
    """Turns statistics into work estimates (all knobs are fields).

    The per-phase weights mirror what the virtual clock charges: one
    partition op per scanned row, look-ahead work per region pair, hash
    build/probe per row per surviving region and one result op per joined
    pair, plus skyline maintenance that shrinks as regions get finer.

    Example::

        model = CostModel()
        model.partition_fanout(stats, ("a0", "a1"), cells=4)
        model.plan_cost(rows_left=500, rows_right=500, fanout_left=9.0,
                        fanout_right=9.0, join_rows=2500.0, dims=2)
    """

    scan_costs: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_SCAN_COSTS)
    )
    #: Look-ahead work per *effective* region pair (construction, output
    #: grid coverage, cone wiring).
    lookahead_weight: float = 3.0
    #: Hash-join build/probe work per row per surviving region.
    join_row_weight: float = 1.0
    #: Work per materialised result pair (map + result + queue charges).
    result_weight: float = 2.25
    #: Skyline-maintenance weight on the dominance-comparison estimate.
    dominance_weight: float = 0.4
    #: Pruning strength: the fraction of pairs that materialise decays
    #: like ``prune_c / sqrt(effective regions)`` (measured fit).
    prune_c: float = 2.0

    @classmethod
    def calibrated(cls, **overrides) -> "CostModel":
        """A model whose scan constants were measured this process.

        Measurement happens at most once per process (see
        :func:`calibrated_scan_costs`); repeated calls are free.
        """
        overrides.setdefault("scan_costs", calibrated_scan_costs())
        return cls(**overrides)

    # ------------------------------------------------------------------
    # per-quantity estimators
    # ------------------------------------------------------------------
    def scan_cost(self, kind: str) -> float:
        """Relative per-row scan effort for a backend ``kind``.

        Composite kinds (``"sqlite+filter"``) resolve by their base
        backend; unknown kinds use :data:`FALLBACK_SCAN_COST`.
        """
        if kind in self.scan_costs:
            return self.scan_costs[kind]
        base = kind.split("+", 1)[0]
        return self.scan_costs.get(base, FALLBACK_SCAN_COST)

    def bytes_scanned(self, stats: SourceStatistics) -> float:
        """Estimated bytes one full scan of the source passes over."""
        return stats.estimated_bytes()

    def partition_fanout(
        self,
        stats: SourceStatistics,
        attributes: Sequence[str],
        cells: int,
        rows: float | None = None,
        correlation: float | None = None,
    ) -> float:
        """Expected occupied grid cells at ``cells`` per dimension.

        Per-dimension occupancy probabilities come from re-bucketing each
        attribute's histogram into ``cells`` buckets; assuming dimension
        independence, a cell's probability is the product of its
        per-dimension bucket masses, and the expectation of occupied cells
        is ``sum(1 - (1 - p)^n)`` over all cells.  Capped at both the cell
        count and the row count (each row occupies exactly one cell).

        ``correlation`` (mean pairwise ``|r|`` over ``attributes``, from
        :meth:`SourceStatistics.mean_abs_correlation`) shrinks the
        independence product: perfectly correlated dimensions occupy a
        1-D diagonal of cells, so the fanout exponent interpolates from
        ``d`` (independent) down to ``1`` (|r| = 1).
        """
        n = float(rows if rows is not None else stats.row_count)
        if n <= 0:
            return 1.0
        per_dimension: list[list[float]] = []
        for attribute in attributes:
            column = stats.column(attribute)
            if column is None or not column.histogram:
                per_dimension.append([1.0 / cells] * cells)
                continue
            per_dimension.append(_rebucket(column.histogram, cells))
        if not per_dimension:
            return 1.0
        expected = 0.0
        for probability in _cell_probabilities(per_dimension):
            if probability <= 0.0:
                continue
            expected += 1.0 - (1.0 - min(probability, 1.0)) ** n
        d = len(per_dimension)
        fanout = max(1.0, min(expected, float(cells**d), n))
        if correlation and d > 1:
            r = min(1.0, max(0.0, abs(correlation)))
            # Occupied cells scale like cells^d_eff with the effective
            # dimensionality d_eff = 1 + (d-1)(1-|r|).
            exponent = (1.0 + (d - 1) * (1.0 - r)) / d
            fanout = max(1.0, min(fanout**exponent, fanout))
        return fanout

    def join_cardinality(
        self,
        left: SourceStatistics,
        right: SourceStatistics,
        left_key: str,
        right_key: str,
        rows_left: float | None = None,
        rows_right: float | None = None,
    ) -> float:
        """Equi-join estimate ``n_l * n_r / max(ndv_l, ndv_r)``."""
        n_l = float(rows_left if rows_left is not None else left.row_count)
        n_r = float(rows_right if rows_right is not None else right.row_count)
        ndv = max(left.key_ndv(left_key), right.key_ndv(right_key), 1.0)
        return max(1.0, n_l * n_r / ndv)

    def skyline_size(self, join_rows: float, dims: int) -> float:
        """Paper Eq. 1 over the expected join output."""
        return expected_skyline_size(join_rows, dims)

    def region_skyline(
        self, join_rows: float, regions: float, dims: int
    ) -> float:
        """Expected skyline size of one region's join output."""
        return expected_skyline_size(join_rows / max(regions, 1.0), dims)

    # ------------------------------------------------------------------
    # whole-plan cost
    # ------------------------------------------------------------------
    def plan_cost(
        self,
        *,
        rows_left: float,
        rows_right: float,
        fanout_left: float,
        fanout_right: float,
        join_rows: float,
        dims: int,
        scan_left: float = 1.0,
        scan_right: float = 1.0,
        skyline: float | None = None,
        correlation: float = 0.0,
    ) -> float:
        """Model cost of one granularity choice, in virtual-time-ish units.

        The terms mirror where the virtual clock actually charges:

        * **partitioning** — a ¼-weight op per scanned row, plus the
          ``fanout_l × fanout_r`` region-pair enumeration
          (:func:`~repro.core.lookahead.build_regions` walks the full
          cartesian product) — the term that *grows* with granularity;
        * **look-ahead** — output-grid coverage and cone wiring per
          *effective* region (regions expected to hold at least one pair);
        * **joins** — hash build/probe over each effective region's slice;
        * **results + dominance** — per *materialised* pair.  Look-ahead
          pruning discards dominated regions before their pairs ever
          materialise; measured across workloads the surviving fraction
          decays like ``prune_c / sqrt(effective regions)``, floored at
          the skyline itself (which always materialises).  This shrinking
          term is what finer granularity buys, and the trade against the
          pair-enumeration term is exactly what the planner optimises.
        """
        regions = max(1.0, fanout_left * fanout_right)
        partition = 0.25 * (
            rows_left * scan_left + rows_right * scan_right + regions
        )
        # Regions expected to receive at least one join pair (Poisson).
        effective = regions * (1.0 - math.exp(-join_rows / regions))
        lookahead = self.lookahead_weight * effective
        floor = (
            skyline if skyline is not None
            else expected_skyline_size(join_rows, dims)
        ) / max(join_rows, 1.0)
        keep = min(
            1.0, max(self.prune_c / math.sqrt(max(effective, 1.0)), floor)
        )
        # Anticorrelated skyline dimensions (signed mean r < 0) spread
        # the skyline along the anti-diagonal where regions do not
        # dominate each other: pruning degrades toward keep = 1.
        defeat = min(1.0, max(0.0, -correlation))
        keep = (1.0 - defeat) * keep + defeat
        materialised = join_rows * keep
        join = self.join_row_weight * effective * keep * (
            rows_left / max(fanout_left, 1.0)
            + rows_right / max(fanout_right, 1.0)
        )
        results = self.result_weight * materialised
        # Dominance work per materialised pair scales with the buffered
        # per-region skyline it is compared against.
        buffered = self.region_skyline(join_rows, regions, dims)
        dominance = self.dominance_weight * materialised * math.log2(
            buffered + 2
        )
        return partition + lookahead + join + results + dominance


def _rebucket(histogram: Sequence[int], cells: int) -> list[float]:
    """Redistribute histogram mass into ``cells`` equal-width buckets."""
    total = float(sum(histogram))
    if total <= 0:
        return [1.0 / cells] * cells
    out = [0.0] * cells
    bins = len(histogram)
    for index, count in enumerate(histogram):
        if count == 0:
            continue
        # The source bin [index, index+1) / bins maps onto cell space.
        lo = index * cells / bins
        hi = (index + 1) * cells / bins
        mass = count / total
        start, stop = int(lo), min(int(math.ceil(hi)), cells)
        span = hi - lo
        for cell in range(start, max(stop, start + 1)):
            if cell >= cells:
                break
            overlap = min(hi, cell + 1) - max(lo, cell)
            if overlap > 0 and span > 0:
                out[cell] += mass * overlap / span
    return out


def _cell_probabilities(per_dimension: list[list[float]]):
    """Yield the product probability of every cell (cartesian product)."""
    if len(per_dimension) == 1:
        yield from per_dimension[0]
        return
    head, *rest = per_dimension
    for p in head:
        for q in _cell_probabilities(rest):
            yield p * q
