"""process-hygiene: multiprocessing must be spawn-safe and importable.

The sharded execution layer (``repro.parallel``) runs worker processes
under the ``spawn`` start method — the only one available everywhere and
the only one safe regardless of coordinator thread state.  Code that
relies on ``fork`` semantics (inherited globals, picklable-by-fork
lambdas, pools created at import time) works on one platform and
deadlocks or crashes on another, so this rule flags, anywhere in the
tree:

* pools built from the **fork-default module-level API**
  (``multiprocessing.Pool(...)`` or an imported ``Pool``) instead of an
  explicit ``multiprocessing.get_context(method).Pool(...)``;
* ``get_context()`` with no argument (platform default = fork on Linux)
  or a literal ``"fork"``, and ``set_start_method("fork")`` — the start
  method must come from the shared resolver
  (:func:`repro.parallel.plan.start_method`) so ``REPRO_MP_START``
  keeps working;
* **module-level pool creation** — a ``Pool``/``ProcessPoolExecutor``
  built as an import side effect spawns processes before the program
  decided anything (and re-spawns recursively under ``spawn`` when the
  importing module is ``__main__``);
* **un-importable worker entry points** — a ``lambda`` passed as the
  task function (or ``initializer``) of a pool dispatch call cannot be
  pickled by reference, so it fails at the first dispatch under
  ``spawn``; worker entry points must be module-level functions.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.base import (
    Checker,
    ParsedModule,
    dotted_name,
    iter_function_defs,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Pool factory attribute names (stdlib multiprocessing + concurrent.futures).
POOL_FACTORIES: frozenset[str] = frozenset({"Pool", "ProcessPoolExecutor"})

#: Pool methods that take a worker function as their first argument.
DISPATCH_METHODS: frozenset[str] = frozenset(
    {
        "apply",
        "apply_async",
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "submit",
    }
)

_CONTEXT_HINT = (
    "build pools from an explicit context: "
    "multiprocessing.get_context(method).Pool(...), with the method taken "
    "from repro.parallel.plan.start_method()"
)

_MODULE_LEVEL_HINT = (
    "create pools lazily inside a function (see "
    "repro.parallel.pool.shared_pool); import-time pools spawn processes "
    "before configuration and recurse under the spawn start method"
)

_LAMBDA_HINT = (
    "spawn pickles worker functions by reference; use a module-level "
    "function (importable from a fresh interpreter) instead of a lambda"
)


@register
class ProcessHygieneChecker(Checker):
    """Multiprocessing use must be explicit-context, lazy and picklable."""

    rule_id = "process-hygiene"
    description = (
        "no fork-default multiprocessing contexts, no import-time pool "
        "creation, worker entry points must be importable (no lambdas)"
    )
    scope: ClassVar[tuple[str, ...]] = ()

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        mp_aliases, pool_names = _multiprocessing_bindings(module.tree)
        if not mp_aliases and not pool_names:
            return
        function_nodes = {
            id(node)
            for func in iter_function_defs(module.tree)
            for node in ast.walk(func)
            if node is not func
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            at_module_level = id(node) not in function_nodes
            yield from self._check_call(
                module, node, mp_aliases, pool_names, at_module_level
            )

    def _check_call(
        self,
        module: ParsedModule,
        node: ast.Call,
        mp_aliases: set[str],
        pool_names: set[str],
        at_module_level: bool,
    ) -> Iterator[Finding]:
        fork_default = _fork_default_pool(node, mp_aliases, pool_names)
        if fork_default is not None:
            yield self.finding(module, node, fork_default, hint=_CONTEXT_HINT)
        fork_context = _fork_context(node, mp_aliases)
        if fork_context is not None:
            yield self.finding(module, node, fork_context, hint=_CONTEXT_HINT)
        if at_module_level and _is_pool_factory(node, pool_names):
            yield self.finding(
                module,
                node,
                "pool created at module level: processes start as an "
                "import side effect",
                hint=_MODULE_LEVEL_HINT,
            )
        lambda_where = _lambda_worker(node)
        if lambda_where is not None:
            yield self.finding(
                module,
                lambda_where,
                "lambda used as a pool worker entry point: not picklable "
                "under the spawn start method",
                hint=_LAMBDA_HINT,
            )


def _multiprocessing_bindings(
    tree: ast.Module,
) -> tuple[set[str], set[str]]:
    """``(module aliases, imported pool-factory names)`` in this module.

    Tracks ``import multiprocessing [as mp]`` (and its ``.pool`` /
    ``.context`` submodules), ``from multiprocessing import Pool [as P]``
    and ``from concurrent.futures import ProcessPoolExecutor``.
    """
    aliases: set[str] = set()
    pool_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                root = item.name.split(".", 1)[0]
                if root == "multiprocessing":
                    aliases.add(item.asname or root)
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".", 1)[0]
            if root not in {"multiprocessing", "concurrent"}:
                continue
            for item in node.names:
                if item.name in POOL_FACTORIES:
                    pool_names.add(item.asname or item.name)
    return aliases, pool_names


def _fork_default_pool(
    node: ast.Call, mp_aliases: set[str], pool_names: set[str]
) -> str | None:
    """Message when ``node`` builds a pool on the fork-default module API."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in pool_names:
        return (
            f"{func.id}() uses the start-method default of the platform; "
            "pools must come from an explicit get_context()"
        )
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head, _, tail = dotted.partition(".")
    if head in mp_aliases and tail in {"Pool", "pool.Pool"}:
        return (
            f"{dotted}() uses the module-level fork-default API; pools "
            "must come from an explicit get_context()"
        )
    return None


def _fork_context(node: ast.Call, mp_aliases: set[str]) -> str | None:
    """Message when ``node`` selects the fork start method."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, tail = dotted.partition(".")
    in_mp = head in mp_aliases
    name = tail if in_mp else dotted
    if name not in {"get_context", "set_start_method"}:
        return None
    if not in_mp and not isinstance(node.func, ast.Name):
        return None
    if name == "get_context" and not node.args and not node.keywords:
        return (
            "get_context() without a method uses the platform default "
            "(fork on Linux)"
        )
    first = node.args[0] if node.args else None
    if (
        isinstance(first, ast.Constant)
        and first.value == "fork"
    ):
        return f"{name}('fork') hard-codes the fork start method"
    return None


def _is_pool_factory(node: ast.Call, pool_names: set[str]) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in pool_names
    if isinstance(func, ast.Attribute):
        return func.attr in POOL_FACTORIES
    return False


def _lambda_worker(node: ast.Call) -> ast.Lambda | None:
    """The lambda handed to a pool dispatch call, if any."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in DISPATCH_METHODS:
        return None
    if node.args and isinstance(node.args[0], ast.Lambda):
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg in {"func", "initializer"} and isinstance(
            keyword.value, ast.Lambda
        ):
            return keyword.value
    return None
