"""determinism: engine code must be reproducible for a fixed seed.

Pause/resume equivalence, cache-shared planning and the multi-backend
equivalence suites all assert byte-identical step reports; a single wall
clock read or unseeded RNG in kernel/plan code breaks them silently and
only under load.  Inside the deterministic core (``core/``, ``skyline/``,
``query/``, ``cache/``, ``data/``, and — since the streaming delta path
made backends part of replan decisions — ``storage/``):

* wall-clock reads (``time.time``, ``time.perf_counter``,
  ``datetime.now``, ...) are banned — virtual time comes from
  :class:`~repro.runtime.clock.VirtualClock`;
* randomness must be injected by the caller as a seeded generator; every
  RNG construction or module-level ``random.*`` call is flagged.  A
  legitimately *seeded* construction stays visible through an explicit
  ``# repro: allow[determinism] — reason`` marker rather than a checker
  allowlist;
* ``id()`` is banned — identity values change across runs, so keying or
  ordering on them is nondeterministic.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.base import Checker, ParsedModule, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Dotted call names that read a wall clock.
WALL_CLOCK_CALLS: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)

#: Trailing dotted suffixes that read a calendar clock.
CALENDAR_SUFFIXES: tuple[str, ...] = (
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Functions of the global (process-seeded) ``random`` module.
GLOBAL_RANDOM_FUNCTIONS: frozenset[str] = frozenset(
    {
        "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
        "shuffle", "choice", "choices", "sample", "seed", "betavariate",
        "expovariate", "triangular", "getrandbits", "randbytes",
    }
)

#: RNG constructors: flagged seeded or not — seeding is a call-site claim
#: the checker cannot verify, so it must be documented with a marker.
RNG_CONSTRUCTORS: tuple[str, ...] = ("default_rng", "Random", "RandomState")

_HINT = (
    "deterministic-core modules must derive all values from their inputs "
    "and seeds; use VirtualClock for time, accept a seeded Generator from "
    "the caller, and document deliberate seeded RNGs with "
    "'# repro: allow[determinism] — reason'"
)


@register
class DeterminismChecker(Checker):
    """No wall clocks, unseeded RNGs or id()-keying in the deterministic core."""

    rule_id = "determinism"
    description = (
        "core/, skyline/, query/, cache/, data/ and storage/ must be "
        "deterministic: no wall-clock reads, undocumented RNGs, or "
        "id()-derived ordering"
    )
    # storage/ joined the scope with streaming ingestion: delta-scan
    # cursors and arrival polls feed replan decisions, so a wall-clock
    # read there would make patch-vs-invalidate outcomes time-dependent
    # (no wall-clock-driven polling in core).
    scope: ClassVar[tuple[str, ...]] = (
        "repro/core/",
        "repro/skyline/",
        "repro/query/",
        "repro/cache/",
        "repro/data/",
        "repro/storage/",
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = (
                dotted_name(node.func)
                if not isinstance(node.func, ast.Name)
                else node.func.id
            )
            if dotted is None:
                continue
            message = self._classify(dotted, node)
            if message is not None:
                yield self.finding(module, node, message, hint=_HINT)

    def _classify(self, dotted: str, node: ast.Call) -> str | None:
        if dotted in WALL_CLOCK_CALLS:
            return (
                f"wall-clock read {dotted}() in a deterministic-core module"
            )
        if any(
            dotted == suffix or dotted.endswith("." + suffix)
            for suffix in CALENDAR_SUFFIXES
        ):
            return (
                f"calendar-clock read {dotted}() in a deterministic-core "
                "module"
            )
        last = dotted.rsplit(".", 1)[-1]
        if last in RNG_CONSTRUCTORS and (
            "." in dotted or last != "Random" or dotted == "Random"
        ):
            seeded = bool(node.args or node.keywords)
            if seeded:
                return (
                    f"RNG construction {dotted}(...) in a deterministic-core "
                    "module; if the argument is a genuine seed, document it"
                )
            return (
                f"unseeded RNG construction {dotted}() in a "
                "deterministic-core module"
            )
        if dotted.startswith("random.") and last in GLOBAL_RANDOM_FUNCTIONS:
            return (
                f"{dotted}() uses the process-global RNG, which is seeded "
                "outside the engine's control"
            )
        if dotted == "id":
            return (
                "id() values are allocation-dependent; keying or ordering "
                "on them is nondeterministic across runs"
            )
        return None
