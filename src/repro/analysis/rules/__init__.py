"""Built-in lint rules.

Importing this package registers every built-in checker; the registry's
:func:`~repro.analysis.registry.all_checkers` does so lazily, so simply
asking for the checkers is enough.
"""

from repro.analysis.rules.async_hygiene import AsyncHygieneChecker
from repro.analysis.rules.clock_discipline import ClockDisciplineChecker
from repro.analysis.rules.determinism import DeterminismChecker
from repro.analysis.rules.error_handling import ErrorHandlingChecker
from repro.analysis.rules.exports import ExportConsistencyChecker
from repro.analysis.rules.process_hygiene import ProcessHygieneChecker

__all__ = [
    "AsyncHygieneChecker",
    "ClockDisciplineChecker",
    "DeterminismChecker",
    "ErrorHandlingChecker",
    "ExportConsistencyChecker",
    "ProcessHygieneChecker",
]
