"""clock-discipline: every dominance comparison is charged to a clock.

The paper's vtime accounting (Fig. 10–13 reproductions, the scheduler's
fairness policies) is only honest if no comparison happens off the books.
This rule patrols ``core/``, ``skyline/`` and ``join/``: a call to one of
the dominance kernels must sit in a function that either takes an
accounting parameter (``on_comparison`` / ``on_comparisons`` / ``clock``)
or visibly charges a :class:`~repro.runtime.clock.VirtualClock`
(``clock.charge``, ``self._charge``, invoking the accounting callback).
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.base import (
    Checker,
    ParsedModule,
    call_name,
    iter_function_defs,
    own_nodes,
    parameter_names,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Dominance kernels whose invocation represents comparison work.
COMPARISON_CALLS: frozenset[str] = frozenset(
    {"dominates", "weakly_dominates", "dominates_matrix", "pareto_mask"}
)

#: Parameter names that mark a function as accounting-aware.
ACCOUNTING_PARAMETERS: frozenset[str] = frozenset(
    {"clock", "on_comparison", "on_comparisons", "charge", "charger"}
)

#: Called names that count as charging the clock inside the function body.
ACCOUNTING_CALLS: frozenset[str] = frozenset(
    {"charge", "_charge", "charger", "on_comparison", "on_comparisons"}
)

_HINT = (
    "charge the comparison to a VirtualClock (or accept an "
    "on_comparison/on_comparisons callback and invoke it); a deliberate "
    "exemption needs '# repro: allow[clock-discipline] — reason'"
)


@register
class ClockDisciplineChecker(Checker):
    """No free dominance comparisons in engine code."""

    rule_id = "clock-discipline"
    description = (
        "dominance-kernel calls in core/, skyline/ and join/ must occur in "
        "functions that charge a VirtualClock or take an accounting callback"
    )
    scope: ClassVar[tuple[str, ...]] = (
        "repro/core/",
        "repro/skyline/",
        "repro/join/",
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        covered: set[int] = set()
        for func in iter_function_defs(module.tree):
            accounted = bool(parameter_names(func) & ACCOUNTING_PARAMETERS)
            comparison_sites: list[ast.Call] = []
            for node in own_nodes(func):
                covered.add(id(node))
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name in ACCOUNTING_CALLS:
                    accounted = True
                elif name in COMPARISON_CALLS:
                    comparison_sites.append(node)
            if accounted:
                continue
            for site in comparison_sites:
                yield self._free_comparison(module, site, func.name)
        # Module-level comparison calls have no function to account them.
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and id(node) not in covered
                and call_name(node) in COMPARISON_CALLS
            ):
                yield self._free_comparison(module, node, None)

    def _free_comparison(
        self, module: ParsedModule, node: ast.Call, function: str | None
    ) -> Finding:
        where = (
            f"function {function!r}" if function else "module level"
        )
        return self.finding(
            module,
            node,
            f"unaccounted {call_name(node)}() call at {where}: the "
            "comparison is never charged to a clock",
            hint=_HINT,
        )
