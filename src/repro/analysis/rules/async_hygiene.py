"""async-hygiene: no blocking work on the event loop, no dropped coroutines.

The serving edge (``serve/``) and the scheduler's async shims run many
queries on one event loop; a single ``time.sleep`` or synchronous socket
call stalls every connected client for its duration.  Inside ``async
def`` bodies in scope this rule flags:

* known blocking calls — ``time.sleep``, synchronous socket/urllib/
  subprocess entry points, ``sqlite3.connect`` and bare ``open()``/
  ``input()``;
* calls to same-module ``async def`` functions used as bare expression
  statements — the coroutine object is created and dropped, so the call
  silently never runs (use ``await`` or ``asyncio.create_task``).
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.base import (
    Checker,
    ParsedModule,
    dotted_name,
    iter_function_defs,
    own_nodes,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Dotted names that block the calling thread.
BLOCKING_CALLS: frozenset[str] = frozenset(
    {
        "time.sleep",
        "sqlite3.connect",
        "socket.create_connection",
        "socket.getaddrinfo",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.waitpid",
    }
)

#: Bare built-in names that block (or prompt) when called from a coroutine.
BLOCKING_BUILTINS: frozenset[str] = frozenset({"open", "input"})

_BLOCKING_HINT = (
    "run blocking work off the loop (loop.run_in_executor / "
    "asyncio.to_thread) or use the async equivalent "
    "(asyncio.sleep, asyncio.open_connection, loop.sock_* APIs)"
)

_DROPPED_HINT = (
    "calling an async def returns a coroutine object without running it; "
    "await it, or hand it to asyncio.create_task / an ensure-future helper"
)


@register
class AsyncHygieneChecker(Checker):
    """Event-loop code must not block, and must not drop coroutines."""

    rule_id = "async-hygiene"
    description = (
        "async def bodies in serve/ and the session scheduler must not "
        "call blocking APIs or drop un-awaited coroutines"
    )
    scope: ClassVar[tuple[str, ...]] = (
        "repro/serve/",
        "repro/session/scheduler.py",
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        local_coroutines = {
            func.name
            for func in iter_function_defs(module.tree)
            if isinstance(func, ast.AsyncFunctionDef)
        }
        for func in iter_function_defs(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in own_nodes(func):
                if isinstance(node, ast.Call):
                    blocked = self._blocking_message(node)
                    if blocked is not None:
                        yield self.finding(
                            module, node, blocked, hint=_BLOCKING_HINT
                        )
                if isinstance(node, ast.Expr) and isinstance(
                    node.value, ast.Call
                ):
                    dropped = self._dropped_coroutine(
                        node.value, local_coroutines
                    )
                    if dropped is not None:
                        yield self.finding(
                            module, node, dropped, hint=_DROPPED_HINT
                        )

    def _blocking_message(self, node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Name):
            if node.func.id in BLOCKING_BUILTINS:
                return (
                    f"blocking builtin {node.func.id}() inside an async def "
                    "stalls the event loop"
                )
            return None
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        if dotted in BLOCKING_CALLS or any(
            dotted.endswith("." + known) for known in BLOCKING_CALLS
        ):
            return (
                f"blocking call {dotted}() inside an async def stalls the "
                "event loop for every connected client"
            )
        return None

    def _dropped_coroutine(
        self, call: ast.Call, local_coroutines: set[str]
    ) -> str | None:
        func = call.func
        name: str | None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ) and func.value.id in {"self", "cls"}:
            name = func.attr
        else:
            name = None
        if name is not None and name in local_coroutines:
            return (
                f"coroutine {name}() is called but never awaited: the call "
                "builds a coroutine object and drops it, so the body never "
                "runs"
            )
        return None
