"""error-handling: broad handlers must record failure or re-raise.

A kernel or pump error that is swallowed by ``except Exception: pass``
leaves its query in a zombie state: the client never receives an error
frame and the scheduler keeps re-dispatching a stepper that can no longer
make progress.  A bare/broad ``except`` in engine code is therefore only
acceptable when its body visibly does one of:

* re-raise (a ``raise`` statement anywhere in the handler);
* record a terminal state — call a ``fail``/``retire``/``abort``-style
  API, emit an error frame, or assign to a ``state`` / ``stop_reason`` /
  ``error`` attribute.

``contextlib.suppress(Exception)`` / ``suppress(BaseException)`` is the
same swallow in disguise and is flagged unconditionally.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.base import Checker, ParsedModule, call_name, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Exception names considered "broad" when caught.
BROAD_EXCEPTIONS: frozenset[str] = frozenset({"Exception", "BaseException"})

#: Substrings of called names that count as recording a terminal state.
RECORDING_CALL_MARKERS: tuple[str, ...] = (
    "fail", "retire", "abort", "error", "terminate", "record", "finish",
    "close", "log", "warning", "exception",
)

#: Attribute names whose assignment counts as recording a terminal state.
RECORDING_ATTRIBUTES: frozenset[str] = frozenset(
    {"state", "stop_reason", "error", "failed", "aborted", "last_error"}
)

_HINT = (
    "narrow the caught types, or make the handler honest: re-raise, or "
    "record the failure on the owning query/stream (retire it FAILED, "
    "emit an error frame, set .error/.state) before continuing"
)


@register
class ErrorHandlingChecker(Checker):
    """No silently-swallowed kernel or pump errors."""

    rule_id = "error-handling"
    description = (
        "bare/broad except blocks must re-raise or record a terminal "
        "state; contextlib.suppress(Exception) is never acceptable"
    )
    scope: ClassVar[tuple[str, ...]] = ()  # repo-wide under src/repro

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                caught = self._broad_name(node)
                if caught is not None and not self._handler_is_honest(node):
                    yield self.finding(
                        module,
                        node,
                        f"{caught} swallows the error: the handler neither "
                        "re-raises nor records a terminal state",
                        hint=_HINT,
                    )
            if isinstance(node, ast.Call):
                suppressed = self._broad_suppress(node)
                if suppressed is not None:
                    yield self.finding(
                        module,
                        node,
                        f"contextlib.suppress({suppressed}) silently drops "
                        "errors that should retire the query or re-raise",
                        hint=_HINT,
                    )

    def _broad_name(self, handler: ast.ExceptHandler) -> str | None:
        """The caught spelling when the handler is bare or broad."""
        if handler.type is None:
            return "bare except:"
        names: list[ast.expr]
        if isinstance(handler.type, ast.Tuple):
            names = list(handler.type.elts)
        else:
            names = [handler.type]
        for expr in names:
            dotted = dotted_name(expr)
            if dotted is not None and dotted.rsplit(".", 1)[-1] in (
                BROAD_EXCEPTIONS
            ):
                return f"except {dotted}:"
        return None

    def _handler_is_honest(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is not None and any(
                    marker in name.lower()
                    for marker in RECORDING_CALL_MARKERS
                ):
                    return True
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in RECORDING_ATTRIBUTES
                    ):
                        return True
        return False

    def _broad_suppress(self, node: ast.Call) -> str | None:
        name = call_name(node)
        if name != "suppress":
            return None
        for arg in node.args:
            dotted = dotted_name(arg)
            if dotted is not None and dotted.rsplit(".", 1)[-1] in (
                BROAD_EXCEPTIONS
            ):
                return dotted
        return None
