"""export-consistency: ``__all__`` and the actual surface must agree.

The docs site's API reference and the README examples are generated and
written against each package's declared surface; an ``__all__`` naming a
symbol that was renamed away breaks ``from repro.x import *`` and the
mkdocstrings build, while a re-export missing from ``__all__`` is a
silent API removal for star-importers.  For every package
``__init__.py`` under ``repro``:

* ``__all__`` must exist and be a literal list/tuple of strings;
* every entry must resolve to a module-level definition or import;
* entries must be unique;
* every public (non-underscore) name pulled in via ``from ... import``
  must appear in ``__all__`` — an undeclared re-export is either missing
  surface or an implementation detail that should be underscored.

Plain modules that opt in by declaring ``__all__`` get the resolution
and uniqueness checks, not the completeness one.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.registry import register

_HINT = (
    "keep __all__, the module-level definitions and the __init__ "
    "re-exports in lockstep; underscore genuinely-private imports"
)


@register
class ExportConsistencyChecker(Checker):
    """Declared exports, definitions and re-exports agree."""

    rule_id = "export-consistency"
    description = (
        "__all__ in package __init__ files must exist, resolve, be "
        "duplicate-free and cover every public re-export"
    )

    def applies_to(self, module: ParsedModule) -> bool:
        return module.package_path.startswith("repro/") or (
            module.package_path == "repro/__init__.py"
        )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        declaration = _find_all_declaration(module.tree)
        if declaration is None:
            if module.is_package_init:
                yield self.finding(
                    module,
                    1,
                    "package __init__ has no __all__: the public surface "
                    "is undeclared, so star-imports and the API reference "
                    "drift silently",
                    hint=_HINT,
                )
            return
        node, names = declaration
        if names is None:
            yield self.finding(
                module,
                node,
                "__all__ is not a literal list/tuple of strings, so the "
                "export surface cannot be checked",
                hint=_HINT,
            )
            return
        seen: set[str] = set()
        for name in names:
            if name in seen:
                yield self.finding(
                    module, node, f"duplicate __all__ entry {name!r}",
                    hint=_HINT,
                )
            seen.add(name)
        defined, imported_public, has_star = _module_surface(module.tree)
        if not has_star:
            for name in sorted(seen - defined):
                yield self.finding(
                    module,
                    node,
                    f"__all__ entry {name!r} does not resolve to any "
                    "module-level definition or import",
                    hint=_HINT,
                )
        if module.is_package_init:
            for name, line in sorted(imported_public.items()):
                if name not in seen:
                    yield self.finding(
                        module,
                        line,
                        f"re-export {name!r} is missing from __all__: "
                        "public surface and declaration disagree",
                        hint=_HINT,
                    )


def _find_all_declaration(
    tree: ast.Module,
) -> tuple[ast.stmt, list[str] | None] | None:
    """The ``__all__`` statement and its entries (``None`` if non-literal)."""
    for stmt in tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if (
            target is None
            or not isinstance(target, ast.Name)
            or target.id != "__all__"
            or value is None
        ):
            continue
        if not isinstance(value, (ast.List, ast.Tuple)):
            return stmt, None
        names: list[str] = []
        for element in value.elts:
            if not isinstance(element, ast.Constant) or not isinstance(
                element.value, str
            ):
                return stmt, None
            names.append(element.value)
        return stmt, names
    return None


def _module_surface(
    tree: ast.Module,
) -> tuple[set[str], dict[str, int], bool]:
    """Module-level names: all definitions, public imports, star-import flag.

    Returns ``(defined, imported_public, has_star_import)`` where
    ``imported_public`` maps each non-underscore imported name to its line.
    """
    defined: set[str] = set()
    imported_public: dict[str, int] = {}
    has_star = False
    for stmt in _toplevel_statements(tree):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        defined.add(leaf.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                defined.add(stmt.target.id)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                defined.add(bound)
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    has_star = True
                    continue
                bound = alias.asname or alias.name
                defined.add(bound)
                if not bound.startswith("_"):
                    imported_public[bound] = stmt.lineno
    return defined, imported_public, has_star


def _toplevel_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module-level statements, descending into top-level if/try guards
    (``if TYPE_CHECKING:``, optional-dependency try blocks) but not into
    function or class bodies."""
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, ast.If):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)
