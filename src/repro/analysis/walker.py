"""File discovery and the check-running loop.

:func:`run_checks` is the framework's engine: walk the requested paths,
parse each ``.py`` file once, hand it to every applicable checker, apply
the suppression table, and fold everything into a :class:`LintReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.base import Checker, ParsedModule, parse_module
from repro.analysis.findings import Finding
from repro.analysis.registry import all_checkers

#: Rule id used for files that fail to parse.
PARSE_ERROR_RULE = "parse-error"

#: Directory names never descended into.
SKIPPED_DIRECTORIES: frozenset[str] = frozenset(
    {"__pycache__", ".git", ".hypothesis", ".pytest_cache", ".mypy_cache"}
)


@dataclass(frozen=True)
class LintReport:
    """Outcome of one analysis run."""

    findings: tuple[Finding, ...]
    files_scanned: int
    rules: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether the run produced no findings."""
        return not self.findings

    def to_json(self) -> dict[str, object]:
        """JSON-ready representation (see ``docs/static-analysis.md``)."""
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "rules": list(self.rules),
            "findings": [finding.to_json() for finding in self.findings],
        }


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through verbatim)."""
    for path in paths:
        if path.is_file():
            yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not any(
                part in SKIPPED_DIRECTORIES for part in candidate.parts
            ):
                yield candidate


def run_checks(
    paths: Sequence[Path],
    rules: Iterable[str] | None = None,
) -> LintReport:
    """Run the (optionally filtered) checkers over every file in ``paths``."""
    wanted = None if rules is None else frozenset(rules)
    checkers: list[Checker] = [
        cls()
        for cls in all_checkers()
        if wanted is None or cls.rule_id in wanted
    ]
    if wanted is not None:
        known = {cls.rule_id for cls in all_checkers()}
        unknown = sorted(wanted - known)
        if unknown:
            raise KeyError(
                f"unknown lint rule(s): {', '.join(unknown)}; "
                f"registered rules: {', '.join(sorted(known))}"
            )
    findings: list[Finding] = []
    files_scanned = 0
    for path in iter_python_files(paths):
        files_scanned += 1
        try:
            module = parse_module(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", None) or 1
            findings.append(
                Finding(
                    path=str(path),
                    line=int(line),
                    rule=PARSE_ERROR_RULE,
                    message=f"file does not parse: {exc}",
                )
            )
            continue
        findings.extend(check_module(module, checkers))
    return LintReport(
        findings=tuple(sorted(findings)),
        files_scanned=files_scanned,
        rules=tuple(checker.rule_id for checker in checkers),
    )


def check_module(
    module: ParsedModule, checkers: Sequence[Checker]
) -> list[Finding]:
    """All unsuppressed findings for one parsed module.

    Reason-less suppression markers surface here as ``suppression``
    findings regardless of which rule filter is active: an unexplained
    exemption is a problem with the file, not with any one rule.
    """
    found: list[Finding] = []
    for checker in checkers:
        if not checker.applies_to(module):
            continue
        for finding in checker.check(module):
            if not module.suppressions.allows(finding.rule, finding.line):
                found.append(finding)
    found.extend(module.suppressions.findings(module.path))
    return found
