"""Checker plugin interface and shared AST utilities.

A rule is a :class:`Checker` subclass: it names itself (``rule_id``),
declares which part of the tree it patrols (``scope`` — package-path
prefixes), and yields :class:`~repro.analysis.findings.Finding` objects
from :meth:`check`.  Registration is one decorator::

    from repro.analysis.registry import register

    @register
    class NoEvalChecker(Checker):
        rule_id = "no-eval"
        description = "eval() is banned in engine code"

        def check(self, module: ParsedModule) -> Iterator[Finding]:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call) and call_name(node) == "eval":
                    yield self.finding(module, node, "eval() call")

The framework (walker + suppressions + CLI) then handles file discovery,
``# repro: allow[...]`` filtering, output formats and exit codes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, Iterator

from repro.analysis.findings import Finding
from repro.analysis.suppressions import Suppressions, collect_suppressions


@dataclass(frozen=True)
class ParsedModule:
    """One parsed source file handed to every applicable checker."""

    #: Path as discovered (used verbatim in findings).
    path: str
    #: Normalised package path anchored at ``repro/`` when the file lives
    #: inside the package (``repro/core/engine.py``); otherwise the
    #: discovery-relative posix path.  Scope matching uses this.
    package_path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def is_package_init(self) -> bool:
        """Whether this module is a package ``__init__.py``."""
        return self.package_path.endswith("__init__.py")


def parse_module(path: Path, display_path: str | None = None) -> ParsedModule:
    """Read and parse one file into a :class:`ParsedModule`.

    Raises :class:`SyntaxError` when the file does not parse; the walker
    converts that into a ``parse-error`` finding.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    shown = display_path if display_path is not None else str(path)
    return ParsedModule(
        path=shown,
        package_path=package_path_of(path),
        source=source,
        tree=tree,
        suppressions=collect_suppressions(source),
    )


def package_path_of(path: Path) -> str:
    """Posix path anchored at the last ``repro`` directory, if any.

    ``/repo/src/repro/core/engine.py`` -> ``repro/core/engine.py``; a file
    outside any ``repro`` tree keeps its name-only path.  Anchoring makes
    scope prefixes (``repro/core/``) independent of where the tree was
    checked out or which path the CLI was invoked with.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.name


class Checker:
    """Base class every lint rule extends."""

    #: Unique kebab-case rule identifier (used in suppressions and output).
    rule_id: ClassVar[str] = ""
    #: One-line description shown by ``repro lint --list-rules``.
    description: ClassVar[str] = ""
    #: Package-path prefixes the rule applies to; empty means every file.
    scope: ClassVar[tuple[str, ...]] = ()
    #: Severity stamped on this rule's findings.
    severity: ClassVar[str] = "error"

    def applies_to(self, module: ParsedModule) -> bool:
        """Whether ``module`` falls inside this rule's scope."""
        if not self.scope:
            return True
        return any(
            module.package_path.startswith(prefix) for prefix in self.scope
        )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        """Yield every violation found in ``module``."""
        raise NotImplementedError

    def finding(
        self,
        module: ParsedModule,
        where: ast.AST | int,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """Build a finding for this rule at ``where`` (a node or line)."""
        line = where if isinstance(where, int) else getattr(where, "lineno", 1)
        return Finding(
            path=module.path,
            line=line,
            rule=self.rule_id,
            message=message,
            severity=self.severity,
            hint=hint,
        )


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.expr) -> str | None:
    """The dotted name of a ``Name``/``Attribute`` chain, or ``None``.

    ``np.random.default_rng`` -> ``"np.random.default_rng"``; anything
    containing a call or subscript in the chain resolves to ``None``.
    """
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def call_name(node: ast.Call) -> str | None:
    """Last segment of the called name: ``a.b.c()`` -> ``"c"``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def parameter_names(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> frozenset[str]:
    """All parameter names of a function (positional, kw-only, varargs)."""
    args = node.args
    names = [
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        )
    ]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return frozenset(names)


def iter_function_defs(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in the module, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def own_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Nodes belonging to ``func`` itself, excluding nested ``def`` bodies.

    Lambdas and comprehensions stay included — they execute in the
    function's dynamic context — while nested named functions are analysed
    on their own.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)
