"""The :class:`Finding` model: one rule violation at one source location.

Findings are plain, ordered, hashable values so checkers can be tested by
comparing lists, the CLI can sort deterministically (path, line, rule), and
the JSON output is a direct field dump.  Severities exist so future rules
can downgrade to advisory without changing the exit-code contract:
``repro lint`` exits non-zero when any finding of severity ``error`` (the
default) survives suppression filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Finding severities, in increasing order of strictness.
SEVERITIES: tuple[str, ...] = ("advice", "warning", "error")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: *rule* at *path:line* with a message and fix hint.

    Example::

        Finding(
            rule="determinism",
            path="src/repro/core/progorder.py",
            line=122,
            message="seeded random.Random(...) in a deterministic-core module",
            hint="document with '# repro: allow[determinism] — reason'",
        )
    """

    path: str
    line: int
    rule: str
    message: str
    severity: str = field(default="error", compare=False)
    hint: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown finding severity {self.severity!r}; "
                f"expected one of {SEVERITIES}"
            )

    def format(self) -> str:
        """One-line human rendering: ``path:line: [rule] message (hint)``."""
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict[str, Any]:
        """JSON-ready field dump (the ``repro lint --format json`` schema)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }
