"""Static analysis for the repro engine: ``repro lint``.

A small plugin framework (stdlib :mod:`ast` only) enforcing the
invariants the test suite cannot see — comparison accounting, core
determinism, event-loop hygiene, honest error handling and export
consistency.  See ``docs/static-analysis.md`` for the rule catalogue and
how to add a rule.
"""

from repro.analysis.base import (
    Checker,
    ParsedModule,
    package_path_of,
    parse_module,
)
from repro.analysis.cli import run_lint
from repro.analysis.findings import SEVERITIES, Finding
from repro.analysis.registry import all_checkers, checker_for, register
from repro.analysis.suppressions import (
    SUPPRESSION_RULE,
    Suppressions,
    collect_suppressions,
    parse_marker,
)
from repro.analysis.walker import (
    PARSE_ERROR_RULE,
    LintReport,
    check_module,
    iter_python_files,
    run_checks,
)

__all__ = [
    "Checker",
    "Finding",
    "LintReport",
    "PARSE_ERROR_RULE",
    "ParsedModule",
    "SEVERITIES",
    "SUPPRESSION_RULE",
    "Suppressions",
    "all_checkers",
    "check_module",
    "checker_for",
    "collect_suppressions",
    "iter_python_files",
    "package_path_of",
    "parse_marker",
    "parse_module",
    "register",
    "run_checks",
    "run_lint",
]
