"""Command-line surface of the analyzer: ``repro lint``.

Exit status: 0 when every scanned file is clean, 1 when any finding
survives suppression, 2 on usage errors (unknown rule, missing path).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.registry import all_checkers
from repro.analysis.walker import LintReport, run_checks

#: Exit codes, by name.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def default_paths() -> list[Path]:
    """``src`` when it exists (repo checkout), else the current directory."""
    src = Path("src")
    return [src] if src.is_dir() else [Path(".")]


def list_rules(out: TextIO) -> int:
    """Print the registered rule catalogue."""
    for checker in all_checkers():
        scope = ", ".join(checker.scope) if checker.scope else "all files"
        out.write(f"{checker.rule_id} [{checker.severity}] ({scope})\n")
        out.write(f"    {checker.description}\n")
    return EXIT_CLEAN


def render_text(report: LintReport, out: TextIO) -> None:
    for finding in report.findings:
        out.write(finding.format() + "\n")
    noun = "file" if report.files_scanned == 1 else "files"
    if report.ok:
        out.write(f"clean: {report.files_scanned} {noun} scanned\n")
    else:
        count = len(report.findings)
        problems = "finding" if count == 1 else "findings"
        out.write(
            f"{count} {problems} in {report.files_scanned} {noun} scanned\n"
        )


def run_lint(
    paths: Sequence[str],
    fmt: str = "text",
    rules: Sequence[str] | None = None,
    out: TextIO | None = None,
    err: TextIO | None = None,
) -> int:
    """Run the analyzer; returns the process exit code."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    targets = [Path(p) for p in paths] if paths else default_paths()
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        err.write(f"repro lint: no such path: {', '.join(missing)}\n")
        return EXIT_USAGE
    try:
        report = run_checks(targets, rules=rules)
    except KeyError as exc:
        err.write(f"repro lint: {exc.args[0]}\n")
        return EXIT_USAGE
    if fmt == "json":
        json.dump(report.to_json(), out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        render_text(report, out)
    return EXIT_CLEAN if report.ok else EXIT_FINDINGS
