"""Per-line suppression comments: ``# repro: allow[rule-id] — reason``.

A finding is suppressed when a marker naming its rule sits on the same
physical line.  The *reason* text after the bracket is mandatory policy:
a marker without one still suppresses its target (one problem should not
report as two), but is itself reported under the ``suppression`` rule —
an allowlist entry nobody can explain is a finding, not an exemption.

Several rules may share one marker: ``# repro: allow[determinism,
clock-discipline] — seeded ablation``.  Markers are extracted with
:mod:`tokenize`, so the pattern inside a string literal is never
mistaken for a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

#: The marker grammar.  The reason is everything after the closing bracket,
#: stripped of decorative separators (dashes, em-dashes, colons).
MARKER_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\](?P<reason>.*)$"
)

_SEPARATORS = " \t—–:-"

#: Rule id carried by findings about the markers themselves.
SUPPRESSION_RULE = "suppression"


@dataclass(frozen=True)
class Suppressions:
    """The suppression markers of one module, keyed by physical line."""

    #: line -> rule ids allowed on that line.
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    #: (line, rule ids) of markers missing a reason.
    unexplained: tuple[tuple[int, frozenset[str]], ...] = ()

    def allows(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed on ``line``."""
        return rule in self.by_line.get(line, frozenset())

    def findings(self, path: str) -> list[Finding]:
        """Findings for the module's reason-less markers."""
        return [
            Finding(
                path=path,
                line=line,
                rule=SUPPRESSION_RULE,
                message=(
                    "suppression without a reason: "
                    f"allow[{','.join(sorted(rules))}]"
                ),
                hint=(
                    "explain the exemption after the bracket: "
                    "# repro: allow[rule-id] — reason"
                ),
            )
            for line, rules in self.unexplained
        ]


def parse_marker(comment: str) -> tuple[frozenset[str], str] | None:
    """Parse one comment; returns ``(rule ids, reason)`` or ``None``."""
    match = MARKER_PATTERN.search(comment)
    if match is None:
        return None
    rules = frozenset(
        part.strip() for part in match.group("rules").split(",") if part.strip()
    )
    reason = match.group("reason").strip(_SEPARATORS)
    return rules, reason


def collect_suppressions(source: str) -> Suppressions:
    """Extract every suppression marker from ``source``.

    Tokenisation failures (the file will separately fail ``ast.parse``)
    yield an empty table rather than raising: suppression handling must
    never mask the underlying syntax error.
    """
    by_line: dict[int, frozenset[str]] = {}
    unexplained: list[tuple[int, frozenset[str]]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return Suppressions()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        parsed = parse_marker(token.string)
        if parsed is None:
            continue
        rules, reason = parsed
        line = token.start[0]
        by_line[line] = by_line.get(line, frozenset()) | rules
        if not reason:
            unexplained.append((line, rules))
    return Suppressions(by_line=by_line, unexplained=tuple(unexplained))
