"""The checker registry: plug-in point for lint rules.

Built-in rules live in :mod:`repro.analysis.rules` and register themselves
at import time via :func:`register`; external code can do the same before
calling :func:`~repro.analysis.walker.run_checks` — the framework treats
both identically.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.analysis.base import Checker

_CHECKERS: dict[str, type[Checker]] = {}

C = TypeVar("C", bound=type[Checker])


def register(checker: C) -> C:
    """Class decorator adding a :class:`Checker` subclass to the registry."""
    rule_id = checker.rule_id
    if not rule_id:
        raise ValueError(f"{checker.__name__} does not define rule_id")
    existing = _CHECKERS.get(rule_id)
    if existing is not None and existing is not checker:
        raise ValueError(
            f"duplicate checker registration for rule {rule_id!r}: "
            f"{existing.__name__} vs {checker.__name__}"
        )
    _CHECKERS[rule_id] = checker
    return checker


def all_checkers() -> tuple[type[Checker], ...]:
    """Every registered checker class, in rule-id order."""
    _load_builtin_rules()
    return tuple(_CHECKERS[rule] for rule in sorted(_CHECKERS))


def checker_for(rule_id: str) -> type[Checker]:
    """The checker class registered under ``rule_id``."""
    _load_builtin_rules()
    try:
        return _CHECKERS[rule_id]
    except KeyError:
        known = ", ".join(sorted(_CHECKERS))
        raise KeyError(
            f"unknown lint rule {rule_id!r}; registered rules: {known}"
        ) from None


_load: Callable[[], None] | None = None


def _load_builtin_rules() -> None:
    """Import the built-in rule modules exactly once (self-registering)."""
    global _load
    if _load is not None:
        return

    def loaded() -> None:
        return None

    _load = loaded
    import repro.analysis.rules  # noqa: F401  (imports register the rules)
