"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the failure class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema is malformed or a referenced column does not exist."""


class ParseError(ReproError):
    """A query string could not be parsed.

    Carries the offending position so callers can point at the problem.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class QueryError(ReproError):
    """A structurally valid query is semantically invalid.

    Examples: a preference over an attribute that no mapping produces, or a
    join condition that references an unknown table alias.
    """


class BindingError(ReproError):
    """A query could not be bound to the supplied tables."""


class RegistryError(ReproError, KeyError):
    """An algorithm name could not be resolved against a registry.

    Derives from :class:`KeyError` so mapping-style lookups
    (``registry["nope"]``) fail the way dictionary users expect.
    """

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message.
        return self.args[0] if self.args else ""


class ExecutionError(ReproError):
    """An internal invariant was violated during query execution.

    Seeing this exception indicates a bug in the engine, never bad user
    input; the message names the broken invariant.
    """


class ServeError(ReproError):
    """The streaming server edge could not honour a request or operation."""


class ProtocolError(ServeError):
    """A serving request violates the wire protocol (malformed or invalid).

    The server edge maps this onto an HTTP 400 response; the message is the
    client-facing explanation.
    """
