"""Synthetic data generation for skyline stress testing (paper §VI-A).

Reimplements the three "de-facto standard" attribute-correlation regimes of
the Börzsönyi / Kossmann / Stocker skyline benchmark generator:

* **independent** — attributes drawn i.i.d. uniform,
* **correlated** — points concentrated around the main diagonal: tuples good
  in one dimension tend to be good in all ("skyline friendly": a handful of
  tuples dominates the table),
* **anti-correlated** — points concentrated around the anti-diagonal
  hyperplane ``sum(attrs) = const``: tuples good in one dimension tend to be
  bad in the others, blowing the skyline up.

Values are scaled into the paper's range ``[1, 100]``.  All generation is
driven by a caller-supplied :class:`numpy.random.Generator` so every dataset
is reproducible from a seed.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

Distribution = Literal["independent", "correlated", "anticorrelated"]

VALUE_LOW = 1.0
VALUE_HIGH = 100.0

#: Spread of points around the (anti-)diagonal, as a fraction of the domain.
_CORRELATION_JITTER = 0.04
#: Std-dev of the anti-correlated plane level.  Must stay small relative to
#: the spread *along* the plane: near-constant sums are what make mutual
#: domination rare and skylines huge.
_ANTI_PLANE_STD = 0.03


def _unit_independent(n: int, d: int, rng: np.random.Generator) -> np.ndarray:
    return rng.random((n, d))


def _unit_correlated(n: int, d: int, rng: np.random.Generator) -> np.ndarray:
    # A per-tuple overall quality level, plus small per-dimension jitter:
    # the classic "points near the diagonal" construction.
    base = rng.random((n, 1))
    jitter = rng.normal(0.0, _CORRELATION_JITTER, size=(n, d))
    return np.clip(base + jitter, 0.0, 1.0)


def _unit_anticorrelated(n: int, d: int, rng: np.random.Generator) -> np.ndarray:
    # Points near the hyperplane sum(x) = d/2: draw a tightly concentrated
    # plane level per tuple, then spread the mass across dimensions via
    # normalised random weights (a scaled simplex draw).  Sums are nearly
    # constant, so tuples good in one dimension are bad in the others.
    level = np.clip(rng.normal(0.5, _ANTI_PLANE_STD, size=(n, 1)), 0.1, 0.9)
    weights = rng.random((n, d)) + 1e-9
    weights /= weights.sum(axis=1, keepdims=True)
    points = level * d * weights
    return np.clip(points, 0.0, 1.0)


_GENERATORS = {
    "independent": _unit_independent,
    "correlated": _unit_correlated,
    "anticorrelated": _unit_anticorrelated,
}


def generate_attributes(
    distribution: Distribution,
    n: int,
    d: int,
    rng: np.random.Generator,
    *,
    low: float = VALUE_LOW,
    high: float = VALUE_HIGH,
) -> np.ndarray:
    """Generate an ``(n, d)`` attribute matrix in ``[low, high]``.

    Parameters mirror the paper's evaluation: ``distribution`` is one of
    ``independent`` / ``correlated`` / ``anticorrelated``, ``n`` the
    cardinality, ``d`` the number of skyline-relevant attributes.
    """
    if n <= 0:
        raise ValueError(f"cardinality must be positive, got {n}")
    if d <= 0:
        raise ValueError(f"dimensionality must be positive, got {d}")
    try:
        unit_fn = _GENERATORS[distribution]
    except KeyError:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"choose from {sorted(_GENERATORS)}"
        ) from None
    unit = unit_fn(n, d, rng)
    return low + unit * (high - low)


def correlation_sign(points: np.ndarray) -> float:
    """Mean pairwise Pearson correlation across dimensions.

    Positive for correlated data, near zero for independent, negative for
    anti-correlated — used by tests to validate the generator regimes.
    """
    if points.shape[1] < 2:
        return 0.0
    corr = np.corrcoef(points, rowvar=False)
    d = corr.shape[0]
    off_diagonal = corr[np.triu_indices(d, k=1)]
    return float(np.mean(off_diagonal))
