"""Join-attribute assignment calibrated to a target join selectivity.

The paper varies the join selectivity σ in ``[1e-4, 1e-1]``.  For an
equi-join between two tables whose join values are drawn uniformly from a
domain of ``m`` distinct values, the expected selectivity is ``1/m``:
each (r, t) pair matches with probability ``1/m``.  So a target σ maps to a
domain of ``round(1/σ)`` values.

A Zipf-skewed option is provided for robustness experiments beyond the
paper (skewed join keys concentrate join work in few partitions).
"""

from __future__ import annotations

import numpy as np


def domain_size_for_selectivity(selectivity: float) -> int:
    """Number of distinct join values realising ``selectivity`` in expectation."""
    if not 0.0 < selectivity <= 1.0:
        raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
    return max(1, round(1.0 / selectivity))


def assign_join_values(
    n: int,
    selectivity: float,
    rng: np.random.Generator,
    *,
    skew: float | None = None,
    prefix: str = "J",
) -> list[str]:
    """Draw ``n`` join values targeting the given equi-join selectivity.

    ``skew`` of ``None`` gives the paper's uniform assignment; a positive
    value draws from a Zipf-like distribution with that exponent.
    Values are strings (``"J0"``, ``"J1"``, ...) to make accidental
    numeric-comparison bugs in join code visible in tests.
    """
    m = domain_size_for_selectivity(selectivity)
    if skew is None:
        draws = rng.integers(0, m, size=n)
    else:
        if skew <= 0:
            raise ValueError(f"skew must be positive, got {skew}")
        weights = 1.0 / np.arange(1, m + 1, dtype=float) ** skew
        weights /= weights.sum()
        draws = rng.choice(m, size=n, p=weights)
    return [f"{prefix}{int(v)}" for v in draws]


def empirical_selectivity(left_values: list, right_values: list) -> float:
    """Measured selectivity: matching pairs / all pairs (for calibration tests)."""
    if not left_values or not right_values:
        return 0.0
    from collections import Counter

    lc = Counter(left_values)
    rc = Counter(right_values)
    matches = sum(c * rc[v] for v, c in lc.items() if v in rc)
    return matches / (len(left_values) * len(right_values))
