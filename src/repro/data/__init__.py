"""Data substrate: synthetic generators, selectivity calibration, workloads."""

from repro.data.generator import (
    Distribution,
    correlation_sign,
    generate_attributes,
)
from repro.data.join_values import (
    assign_join_values,
    domain_size_for_selectivity,
    empirical_selectivity,
)
from repro.data.workloads import (
    RefinementWorkload,
    SupplyChainWorkload,
    SyntheticWorkload,
    TravelWorkload,
)

__all__ = [
    "Distribution",
    "RefinementWorkload",
    "SupplyChainWorkload",
    "SyntheticWorkload",
    "TravelWorkload",
    "assign_join_values",
    "correlation_sign",
    "domain_size_for_selectivity",
    "empirical_selectivity",
    "generate_attributes",
]
