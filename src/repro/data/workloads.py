"""Workload builders: the paper's synthetic benchmark plus three realistic
scenarios from its motivating applications (§I-B).

Every workload produces two :class:`~repro.storage.table.Table` objects and a
:class:`~repro.query.smj.SkyMapJoinQuery`, fully determined by a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.generator import Distribution, generate_attributes
from repro.data.join_values import assign_join_values
from repro.query.expressions import Attr
from repro.query.mapping import MappingFunction, MappingSet
from repro.query.smj import (
    BoundQuery,
    FilterCondition,
    JoinCondition,
    PassThrough,
    SkyMapJoinQuery,
)
from repro.skyline.preferences import ParetoPreference, lowest
from repro.storage.table import Table


@dataclass
class SyntheticWorkload:
    """The paper's evaluation workload (§VI-A).

    Two tables of cardinality ``n`` each, ``d`` skyline-relevant attributes
    per side with values in [1, 100] under the chosen correlation regime,
    join values calibrated to selectivity ``sigma``, and the paper's mapping
    — per-dimension addition ``x_i = R.a_i + T.b_i`` — minimised on every
    dimension.
    """

    distribution: Distribution = "independent"
    n: int = 1000
    d: int = 2
    sigma: float = 0.01
    seed: int = 7
    skew: float | None = None

    left_alias: str = "R"
    right_alias: str = "T"

    def tables(self) -> dict[str, Table]:
        """Generate both input tables (deterministic in the seed)."""
        rng = np.random.default_rng(self.seed)  # repro: allow[determinism] — generator is seeded by the workload spec
        out = {}
        for alias, prefix in ((self.left_alias, "a"), (self.right_alias, "b")):
            attrs = generate_attributes(self.distribution, self.n, self.d, rng)
            jvals = assign_join_values(self.n, self.sigma, rng, skew=self.skew)
            columns = ["id", "jkey"] + [f"{prefix}{i}" for i in range(self.d)]
            rows = [
                (f"{alias}{i}", jvals[i], *map(float, attrs[i]))
                for i in range(self.n)
            ]
            out[alias] = Table(alias, columns, rows)
        return out

    def query(self) -> SkyMapJoinQuery:
        """The SMJ query over the synthetic tables."""
        mappings = MappingSet(
            [
                MappingFunction(
                    f"x{i}",
                    Attr(self.left_alias, f"a{i}") + Attr(self.right_alias, f"b{i}"),
                )
                for i in range(self.d)
            ]
        )
        return SkyMapJoinQuery(
            left_alias=self.left_alias,
            right_alias=self.right_alias,
            join=JoinCondition("jkey", "jkey"),
            mappings=mappings,
            preference=ParetoPreference(lowest(f"x{i}") for i in range(self.d)),
            passthrough=(
                PassThrough(self.left_alias, "id", "left_id"),
                PassThrough(self.right_alias, "id", "right_id"),
            ),
        )

    def bound(self) -> BoundQuery:
        """Generate tables and bind the query in one step."""
        return self.query().bind(self.tables())


@dataclass
class SupplyChainWorkload:
    """The paper's Q1: suppliers × transporters (Example 3, §I-B).

    Suppliers carry unit price, manufacturing time, capacity and a parts
    list; transporters carry shipping cost and time.  The query couples
    suppliers able to produce 100K units of part P1 with transporters in the
    same country, minimising total cost and delay.
    """

    n_suppliers: int = 400
    n_transporters: int = 400
    n_countries: int = 20
    distribution: Distribution = "independent"
    seed: int = 11
    part_pool: tuple[str, ...] = ("P1", "P2", "P3", "P4")

    def tables(self) -> dict[str, Table]:
        rng = np.random.default_rng(self.seed)  # repro: allow[determinism] — generator is seeded by the workload spec
        countries = [f"C{i}" for i in range(self.n_countries)]

        sup_attrs = generate_attributes(
            self.distribution, self.n_suppliers, 2, rng
        )
        suppliers = []
        for i in range(self.n_suppliers):
            n_parts = int(rng.integers(1, len(self.part_pool) + 1))
            parts = tuple(
                rng.choice(self.part_pool, size=n_parts, replace=False)
            )
            suppliers.append(
                (
                    f"S{i}",
                    countries[int(rng.integers(0, self.n_countries))],
                    float(sup_attrs[i, 0]),  # uPrice
                    float(sup_attrs[i, 1]),  # manTime
                    float(rng.integers(50, 301)) * 1000.0,  # manCap
                    parts,
                )
            )
        tra_attrs = generate_attributes(
            self.distribution, self.n_transporters, 2, rng
        )
        transporters = [
            (
                f"T{i}",
                countries[int(rng.integers(0, self.n_countries))],
                float(tra_attrs[i, 0]),  # uShipCost
                float(tra_attrs[i, 1]),  # shipTime
            )
            for i in range(self.n_transporters)
        ]
        return {
            "R": Table(
                "Suppliers",
                ["id", "country", "uPrice", "manTime", "manCap", "suppliedParts"],
                suppliers,
            ),
            "T": Table(
                "Transporters",
                ["id", "country", "uShipCost", "shipTime"],
                transporters,
            ),
        }

    def query(self) -> SkyMapJoinQuery:
        mappings = MappingSet(
            [
                MappingFunction("tCost", Attr("R", "uPrice") + Attr("T", "uShipCost")),
                MappingFunction(
                    "delay", 2.0 * Attr("R", "manTime") + Attr("T", "shipTime")
                ),
            ]
        )
        return SkyMapJoinQuery(
            left_alias="R",
            right_alias="T",
            join=JoinCondition("country", "country"),
            mappings=mappings,
            preference=ParetoPreference([lowest("tCost"), lowest("delay")]),
            filters=(
                FilterCondition("R", "suppliedParts", "contains", "P1"),
                FilterCondition("R", "manCap", ">=", 100_000.0),
            ),
            passthrough=(
                PassThrough("R", "id", "supplier"),
                PassThrough("T", "id", "transporter"),
            ),
        )

    def bound(self) -> BoundQuery:
        return self.query().bind(self.tables())


@dataclass
class TravelWorkload:
    """The Kayak-style aggregator (Example 1, §I-B): Rome + Paris trip.

    One relation per leg, joined on the travel week.  The traveller walks
    twice as happily in Rome, so Rome walking distance enters the combined
    walking objective at half weight; the cumulative cost is the plain sum.
    """

    n_rome: int = 300
    n_paris: int = 300
    n_weeks: int = 12
    distribution: Distribution = "anticorrelated"
    seed: int = 13

    def tables(self) -> dict[str, Table]:
        rng = np.random.default_rng(self.seed)  # repro: allow[determinism] — generator is seeded by the workload spec
        out = {}
        for alias, city, n in (("R", "rome", self.n_rome), ("P", "paris", self.n_paris)):
            attrs = generate_attributes(self.distribution, n, 2, rng)
            rows = [
                (
                    f"{city}-{i}",
                    int(rng.integers(0, self.n_weeks)),
                    float(attrs[i, 0]),  # walkKm (scaled 1..100)
                    float(attrs[i, 1] * 10.0),  # cost
                )
                for i in range(n)
            ]
            out[alias] = Table(city, ["pkg", "week", "walkKm", "cost"], rows)
        return out

    def query(self) -> SkyMapJoinQuery:
        mappings = MappingSet(
            [
                MappingFunction(
                    "totalWalk", 0.5 * Attr("R", "walkKm") + Attr("P", "walkKm")
                ),
                MappingFunction("totalCost", Attr("R", "cost") + Attr("P", "cost")),
            ]
        )
        return SkyMapJoinQuery(
            left_alias="R",
            right_alias="P",
            join=JoinCondition("week", "week"),
            mappings=mappings,
            preference=ParetoPreference([lowest("totalWalk"), lowest("totalCost")]),
            passthrough=(
                PassThrough("R", "pkg", "rome_pkg"),
                PassThrough("P", "pkg", "paris_pkg"),
            ),
        )

    def bound(self) -> BoundQuery:
        return self.query().bind(self.tables())


@dataclass
class RefinementWorkload:
    """On-line search refinement (Example 2, §I-B).

    The user's original query came back empty; candidate products and seller
    offers are scored by how far they deviate from the original constraints.
    The skyline of (budget excess, delivery delay, spec distance) keeps the
    relaxations "as close as possible to the original query".
    """

    n_products: int = 300
    n_offers: int = 300
    n_families: int = 25
    distribution: Distribution = "independent"
    seed: int = 17

    def tables(self) -> dict[str, Table]:
        rng = np.random.default_rng(self.seed)  # repro: allow[determinism] — generator is seeded by the workload spec
        fam = [f"F{i}" for i in range(self.n_families)]
        p_attrs = generate_attributes(self.distribution, self.n_products, 2, rng)
        products = [
            (
                f"prod-{i}",
                fam[int(rng.integers(0, self.n_families))],
                float(p_attrs[i, 0]),  # priceDelta: excess over budget
                float(p_attrs[i, 1]),  # specDelta: feature distance
            )
            for i in range(self.n_products)
        ]
        o_attrs = generate_attributes(self.distribution, self.n_offers, 2, rng)
        offers = [
            (
                f"offer-{i}",
                fam[int(rng.integers(0, self.n_families))],
                float(o_attrs[i, 0]),  # feeDelta
                float(o_attrs[i, 1]),  # shipDays
            )
            for i in range(self.n_offers)
        ]
        return {
            "R": Table("products", ["id", "family", "priceDelta", "specDelta"], products),
            "O": Table("offers", ["id", "family", "feeDelta", "shipDays"], offers),
        }

    def query(self) -> SkyMapJoinQuery:
        mappings = MappingSet(
            [
                MappingFunction(
                    "overBudget", Attr("R", "priceDelta") + Attr("O", "feeDelta")
                ),
                MappingFunction("delay", Attr("O", "shipDays")),
                MappingFunction("mismatch", Attr("R", "specDelta")),
            ]
        )
        return SkyMapJoinQuery(
            left_alias="R",
            right_alias="O",
            join=JoinCondition("family", "family"),
            mappings=mappings,
            preference=ParetoPreference(
                [lowest("overBudget"), lowest("delay"), lowest("mismatch")]
            ),
            passthrough=(
                PassThrough("R", "id", "product"),
                PassThrough("O", "id", "offer"),
            ),
        )

    def bound(self) -> BoundQuery:
        return self.query().bind(self.tables())
