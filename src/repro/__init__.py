"""ProgXe: progressive result generation for multi-criteria decision support
(SkyMapJoin) queries.

Reproduction of Raghavan & Rundensteiner, ICDE 2010 / WPI-CS-TR-09-05.

The canonical entry point is the **session API**: register tables once, then
build queries fluently and consume results as a stream::

    import repro

    workload = repro.SyntheticWorkload(distribution="anticorrelated",
                                       n=500, d=2, sigma=0.01)
    session = repro.Session().register_tables(workload.tables())

    stream = (
        session.query()
        .from_tables("R", "T")
        .join_on("R.jkey = T.jkey")
        .map("x0", "R.a0 + T.b0")
        .map("x1", "R.a1 + T.b1")
        .preferring(repro.lowest("x0"), repro.lowest("x1"))
        .execute()                      # -> ResultStream
    )
    for result in stream:               # results stream out as proven final
        print(result.outputs)

Streams also support push callbacks (``on_result`` / ``on_progress`` /
``on_complete``), cooperative ``cancel()``, and ``StreamBudget`` ceilings
that stop the engine cleanly mid-run — any prefix is provably correct.
The paper's SQL surface goes through the same session::

    stream = session.execute('''
        SELECT R.id, T.id,
               (R.uPrice + T.uShipCost) AS tCost,
               (2 * R.manTime + T.shipTime) AS delay
        FROM Suppliers R, Transporters T
        WHERE R.country = T.country
        PREFERRING LOWEST(tCost) AND LOWEST(delay)
    ''', algorithm="ProgXe+", budget=repro.StreamBudget(max_results=10))

Storage is pluggable behind the ``DataSource`` batch-scan protocol:
besides in-memory ``Table`` objects, queries run directly over mmap-backed
columnar files (``ColumnarFileSource`` — inputs larger than RAM stream
through planning in bounded memory) and SQLite relations
(``SQLiteSource`` — local filters push down as ``WHERE``), with
``open_source("columnar:...", "sqlite:db?table=t", "mem:rows.csv")``
resolving backend URIs.

The lower layers remain public: ``ProgXeEngine`` (raw engine, configurable
via ``EngineConfig``), ``run_algorithm``/``compare_algorithms`` (batch
harnesses, now shims over the stream layer), and the ``ALGORITHMS`` view
over the pluggable algorithm registry.
"""

from repro.cache import CacheStats, PartitionKey, PartitionStore, PlanCache
from repro.baselines import (
    JoinFirstSkylineLater,
    JoinFirstSkylineLaterPlus,
    SkylineSortMergeJoin,
    SortedAccessJoin,
)
from repro.core import (
    ALGORITHMS,
    PROGXE_VARIANTS,
    ExecutionKernel,
    ExplainReport,
    KernelSnapshot,
    PlanningReport,
    ProgXeEngine,
    QueryPlan,
    StepReport,
    StreamingKernel,
    VerificationReport,
    explain,
    explain_estimates,
    progxe,
    progxe_no_order,
    progxe_plus,
    progxe_plus_no_order,
    trace,
    verify_results,
)
from repro.planner import (
    CostModel,
    PlanDecision,
    Planner,
    SourceStatistics,
    StatisticsStore,
)
from repro.data import (
    RefinementWorkload,
    SupplyChainWorkload,
    SyntheticWorkload,
    TravelWorkload,
)
from repro.errors import (
    BindingError,
    ExecutionError,
    ParseError,
    QueryError,
    RegistryError,
    ReproError,
    SchemaError,
)
from repro.query import (
    Attr,
    BoundQuery,
    ChainJoin,
    Const,
    Interval,
    MappingFunction,
    MappingSet,
    MultiwayQuery,
    ResultTuple,
    SkyMapJoinQuery,
    parse_query,
    render_query,
)
from repro.session import (
    AlgorithmRegistry,
    EngineConfig,
    QueryBuilder,
    QueryScheduler,
    ResultStream,
    ScheduledQuery,
    SchedulerConfig,
    Session,
    StreamBudget,
    StreamStats,
    default_registry,
)
from repro.runtime import (
    ComparisonReport,
    ProgressRecorder,
    RunResult,
    VirtualClock,
    compare_algorithms,
    run_algorithm,
)
from repro.skyline import (
    HIGHEST,
    LOWEST,
    ParetoPreference,
    Preference,
    bnl_skyline,
    dominates,
    highest,
    lowest,
    sfs_skyline,
)
from repro.storage import (
    ColumnarFileSource,
    ColumnarWriter,
    DataSource,
    InMemorySource,
    Schema,
    SQLiteSource,
    Table,
    open_source,
    write_columnar,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AlgorithmRegistry",
    "Attr",
    "BindingError",
    "BoundQuery",
    "CacheStats",
    "ChainJoin",
    "ComparisonReport",
    "Const",
    "CostModel",
    "EngineConfig",
    "ExecutionError",
    "ExecutionKernel",
    "ExplainReport",
    "KernelSnapshot",
    "HIGHEST",
    "Interval",
    "JoinFirstSkylineLater",
    "JoinFirstSkylineLaterPlus",
    "LOWEST",
    "MappingFunction",
    "MappingSet",
    "MultiwayQuery",
    "PROGXE_VARIANTS",
    "ParetoPreference",
    "ParseError",
    "PartitionKey",
    "PartitionStore",
    "PlanCache",
    "PlanDecision",
    "Planner",
    "PlanningReport",
    "Preference",
    "ProgXeEngine",
    "ProgressRecorder",
    "QueryBuilder",
    "QueryError",
    "QueryPlan",
    "QueryScheduler",
    "RefinementWorkload",
    "RegistryError",
    "ReproError",
    "ResultStream",
    "ResultTuple",
    "RunResult",
    "Schema",
    "SchemaError",
    "Session",
    "SkyMapJoinQuery",
    "ScheduledQuery",
    "SchedulerConfig",
    "SkylineSortMergeJoin",
    "SortedAccessJoin",
    "SourceStatistics",
    "StatisticsStore",
    "StepReport",
    "StreamBudget",
    "StreamStats",
    "StreamingKernel",
    "SupplyChainWorkload",
    "SyntheticWorkload",
    "Table",
    "ColumnarFileSource",
    "ColumnarWriter",
    "DataSource",
    "InMemorySource",
    "SQLiteSource",
    "open_source",
    "write_columnar",
    "TravelWorkload",
    "VerificationReport",
    "VirtualClock",
    "bnl_skyline",
    "compare_algorithms",
    "default_registry",
    "dominates",
    "explain",
    "explain_estimates",
    "highest",
    "lowest",
    "parse_query",
    "progxe",
    "progxe_no_order",
    "progxe_plus",
    "progxe_plus_no_order",
    "render_query",
    "run_algorithm",
    "sfs_skyline",
    "trace",
    "verify_results",
]
