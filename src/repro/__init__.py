"""ProgXe: progressive result generation for multi-criteria decision support
(SkyMapJoin) queries.

Reproduction of Raghavan & Rundensteiner, ICDE 2010 / WPI-CS-TR-09-05.

Quickstart::

    import repro

    workload = repro.SyntheticWorkload(distribution="anticorrelated",
                                       n=500, d=2, sigma=0.01)
    bound = workload.bound()
    engine = repro.ProgXeEngine(bound)
    for result in engine.run():        # results stream out as proven final
        print(result.outputs)

Or with the paper's SQL surface::

    query = repro.parse_query('''
        SELECT R.id, T.id,
               (R.uPrice + T.uShipCost) AS tCost,
               (2 * R.manTime + T.shipTime) AS delay
        FROM Suppliers R, Transporters T
        WHERE R.country = T.country
        PREFERRING LOWEST(tCost) AND LOWEST(delay)
    ''')
    bound = query.bind_by_table_name({"Suppliers": suppliers,
                                      "Transporters": transporters})
"""

from repro.baselines import (
    JoinFirstSkylineLater,
    JoinFirstSkylineLaterPlus,
    SkylineSortMergeJoin,
    SortedAccessJoin,
)
from repro.core import (
    ALGORITHMS,
    PROGXE_VARIANTS,
    ProgXeEngine,
    progxe,
    progxe_no_order,
    progxe_plus,
    progxe_plus_no_order,
)
from repro.data import (
    RefinementWorkload,
    SupplyChainWorkload,
    SyntheticWorkload,
    TravelWorkload,
)
from repro.errors import (
    BindingError,
    ExecutionError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.query import (
    Attr,
    BoundQuery,
    ChainJoin,
    Const,
    Interval,
    MappingFunction,
    MappingSet,
    MultiwayQuery,
    ResultTuple,
    SkyMapJoinQuery,
    parse_query,
    render_query,
)
from repro.runtime import (
    ComparisonReport,
    ProgressRecorder,
    RunResult,
    VirtualClock,
    compare_algorithms,
    run_algorithm,
)
from repro.skyline import (
    HIGHEST,
    LOWEST,
    ParetoPreference,
    Preference,
    bnl_skyline,
    dominates,
    highest,
    lowest,
    sfs_skyline,
)
from repro.storage import Schema, Table

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "Attr",
    "BindingError",
    "BoundQuery",
    "ComparisonReport",
    "Const",
    "ExecutionError",
    "HIGHEST",
    "Interval",
    "JoinFirstSkylineLater",
    "JoinFirstSkylineLaterPlus",
    "LOWEST",
    "ChainJoin",
    "MappingFunction",
    "MappingSet",
    "MultiwayQuery",
    "PROGXE_VARIANTS",
    "render_query",
    "ParetoPreference",
    "ParseError",
    "Preference",
    "ProgXeEngine",
    "ProgressRecorder",
    "QueryError",
    "RefinementWorkload",
    "ReproError",
    "ResultTuple",
    "RunResult",
    "Schema",
    "SchemaError",
    "SkyMapJoinQuery",
    "SkylineSortMergeJoin",
    "SortedAccessJoin",
    "SupplyChainWorkload",
    "SyntheticWorkload",
    "Table",
    "TravelWorkload",
    "VirtualClock",
    "bnl_skyline",
    "compare_algorithms",
    "dominates",
    "highest",
    "lowest",
    "parse_query",
    "progxe",
    "progxe_no_order",
    "progxe_plus",
    "progxe_plus_no_order",
    "run_algorithm",
    "sfs_skyline",
]
