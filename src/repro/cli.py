"""Command-line interface: ``python -m repro <command>``.

All commands are routed through the :class:`~repro.session.service.Session`
service API — queries execute as :class:`~repro.session.stream.ResultStream`
handles, so budgets (``--max-vtime``, ``--max-comparisons``,
``--max-results``) stop the engine cleanly mid-run while keeping every
already-emitted result provably final.

Commands
--------

``run``
    Execute one algorithm on a synthetic workload; print the progressive
    output stream (or just the summary).

``compare``
    Run several algorithms on the same workload; print the paper-style
    progressiveness and total-cost tables.

``query``
    Parse an SMJ query (the paper's SQL-with-PREFERRING surface) and run
    it progressively against CSV tables.

``generate``
    Write a synthetic workload's two tables to CSV files.

``explain``
    Show the ProgXe plan for a workload without executing it.

``serve``
    Start the streaming HTTP server
    (:class:`~repro.serve.app.QueryServer`): clients POST queries to
    ``/query`` and receive NDJSON/SSE result frames the moment the
    interleaved engine emits them, under admission control and per-client
    backpressure.

``interleave``
    Concurrency demo: admit several queries to the cooperative
    :class:`~repro.session.scheduler.QueryScheduler` and interleave their
    execution kernels, printing results as each query emits them plus a
    per-query latency/fairness summary.

``algorithms``
    List the registered algorithms (the pluggable registry behind ``-a``).

``lint``
    Run the repo's own static analyzer (:mod:`repro.analysis`) over
    Python sources: comparison accounting, determinism, async hygiene,
    process hygiene, error handling and export consistency.  Non-zero
    exit on findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.data.workloads import SyntheticWorkload
from repro.errors import RegistryError, ReproError
from repro.session.config import (
    PRESETS,
    SCHEDULER_PRESETS,
    SCHEDULING_POLICIES,
    EngineConfig,
    SchedulerConfig,
)
from repro.session.service import Session
from repro.session.stream import StreamBudget
from repro.storage.sources import (
    SQLiteSource,
    describe_source,
    is_source_uri,
    open_source,
    write_columnar,
)
from repro.storage.table import Table


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--distribution", "-D",
        choices=["independent", "correlated", "anticorrelated"],
        default="independent", help="attribute correlation regime",
    )
    parser.add_argument("-n", type=int, default=400, help="rows per table")
    parser.add_argument("-d", type=int, default=2, help="skyline dimensions")
    parser.add_argument("--sigma", type=float, default=0.01,
                        help="target join selectivity")
    parser.add_argument("--seed", type=int, default=7, help="RNG seed")


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-vtime", type=float, default=None,
                        help="stop after this much virtual time")
    parser.add_argument("--max-comparisons", type=int, default=None,
                        help="stop after this many dominance comparisons")
    parser.add_argument("--max-results", type=int, default=None,
                        help="stop after this many results")


def _budget(args: argparse.Namespace) -> StreamBudget | None:
    budget = StreamBudget(
        max_vtime=getattr(args, "max_vtime", None),
        max_comparisons=getattr(args, "max_comparisons", None),
        max_results=getattr(args, "max_results", None),
    )
    return None if budget.unlimited else budget


def _workload(args: argparse.Namespace) -> SyntheticWorkload:
    return SyntheticWorkload(
        distribution=args.distribution, n=args.n, d=args.d,
        sigma=args.sigma, seed=args.seed,
    )


def _add_source_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--source", action="append", default=[], metavar="ALIAS=URI",
        help="bind a workload alias to a storage backend URI "
        "(mem:PATH.csv, columnar:PATH, sqlite:PATH?table=T); aliases not "
        "listed keep the generated in-memory tables",
    )


def _resolve_sources(
    args: argparse.Namespace, workload: SyntheticWorkload
):
    """Workload tables with ``--source`` overrides applied.

    Returns ``(tables, backends)`` where ``backends`` maps each alias to a
    human description of its active backend (empty without overrides).
    """
    tables = workload.tables()
    backends: dict[str, str] = {}
    for spec in getattr(args, "source", None) or []:
        alias, sep, uri = spec.partition("=")
        if not sep:
            raise SystemExit(f"--source expects ALIAS=URI, got {spec!r}")
        if alias not in tables:
            raise SystemExit(
                f"--source alias {alias!r} is not a workload alias; "
                f"expected one of {sorted(tables)}"
            )
        if uri in ("mem", "mem:"):
            backends[alias] = describe_source(tables[alias])
            continue  # explicit default: the generated in-memory table
        tables[alias] = open_source(uri, name=alias)
        backends[alias] = describe_source(tables[alias])
    return tables, backends


def _backend_line(tables, backends) -> str:
    """``R=columnar(...) T=memory(...)`` summary of the active backends."""
    return "  ".join(
        f"{alias}={backends.get(alias, describe_source(table))}"
        for alias, table in tables.items()
    )


def _effective_workers(args: argparse.Namespace) -> int | None:
    """Resolve ``--workers``, warning (never crashing) on degradation.

    CLI policy is conservative: oversubscribing the machine's cores is
    refused (the engine would allow it), and an unavailable start method
    degrades to the solo kernel.  Either way the effective count is
    printed so operators can see what they actually got.
    """
    requested = getattr(args, "workers", None)
    if requested is None:
        return None
    if requested < 1:
        raise SystemExit(f"--workers must be >= 1, got {requested}")
    if requested == 1:
        return 1
    from repro.parallel.plan import resolve_workers

    effective, reason = resolve_workers(requested, oversubscribe=False)
    if reason:
        print(f"warning: {reason}", file=sys.stderr)
    print(f"workers: {effective}"
          + (" (solo kernel)" if effective == 1 else " processes"))
    return effective


def _session(args: argparse.Namespace) -> Session:
    config = None
    preset = getattr(args, "preset", None)
    if preset:
        config = EngineConfig.preset(preset)
    workers = _effective_workers(args)
    if workers is not None and workers != (config or EngineConfig()).workers:
        config = (config or EngineConfig()).with_options(workers=workers)
    return Session(config=config)


def _algorithm_names(session: Session, spec: str) -> list[str]:
    if spec == "all":
        return list(session.algorithms())
    if spec == "variants":
        return [
            entry.name
            for entry in session.registry.entries()
            if "progressive" in entry.tags
        ]
    names = []
    for name in spec.split(","):
        name = name.strip()
        try:
            names.append(session.registry.entry(name).name)
        except RegistryError as exc:
            raise SystemExit(str(exc)) from None
    return names


def _cmd_run(args: argparse.Namespace) -> int:
    session = _session(args)
    [name] = _one_algorithm(session, args.algorithm)
    workload = _workload(args)
    if args.follow:
        if args.source:
            raise SystemExit(
                "--follow demonstrates in-memory streaming ingestion; "
                "drop --source"
            )
        return _run_follow(session, name, workload, args)
    tables, backends = _resolve_sources(args, workload)
    bound = workload.query().bind(tables)
    if backends:
        print(f"sources: {_backend_line(tables, backends)}")
    stream = session.execute(bound, algorithm=name, budget=_budget(args))
    for result in stream:
        if args.stream:
            print(f"t={stream.clock.now():>12.0f}  {result.outputs}")
    stats = stream.stats()
    print(f"{name}: {stats.results} results, total virtual cost "
          f"{stats.vtime:.0f}, {stats.dominance_comparisons} dominance "
          "comparisons")
    if stats.stop_reason:
        print(f"stopped early: {stats.stop_reason}")
    return 0


def _run_follow(
    session: Session, name: str, workload: SyntheticWorkload,
    args: argparse.Namespace,
) -> int:
    """Streaming-ingestion demo: plan over a prefix, absorb arrivals mid-run.

    Half of each synthetic table is present at submission; the rest
    arrives in ``--arrival-chunks`` batches interleaved with kernel steps
    through the cooperative scheduler, then the arrival window closes and
    the query drains to its full (one-shot-equivalent) result set.
    """
    chunks = args.arrival_chunks
    if chunks < 1:
        raise SystemExit(f"--arrival-chunks must be >= 1, got {chunks}")
    config = session.config.with_options(follow=True)
    live: dict[str, Table] = {}
    arrivals: dict[str, list[list[tuple]]] = {}
    for alias, table in workload.tables().items():
        rows = list(table.rows)
        split = max(1, len(rows) // 2)
        live[alias] = Table(alias, table.schema, rows[:split])
        rest = rows[split:]
        size = max(1, -(-len(rest) // chunks))
        arrivals[alias] = [
            rest[i:i + size] for i in range(0, len(rest), size)
        ]
    bound = workload.query().bind(live)
    scheduler = session.scheduler()
    handle = scheduler.submit(
        bound, algorithm=name, config=config, budget=_budget(args),
        name="follow",
    )
    rounds = max(len(parts) for parts in arrivals.values())
    for i in range(rounds):
        for _ in range(50):
            if not scheduler.tick():
                break
        appended = 0
        for alias, parts in arrivals.items():
            if i < len(parts):
                live[alias].extend_rows(parts[i])
                appended += len(parts[i])
        print(f"arrival {i + 1}/{rounds}: +{appended} rows mid-run")
    handle.close_ingest()
    while not handle.finished and scheduler.tick():
        pass
    if args.stream:
        for result in handle.results:
            print(f"  {result.outputs}")
    stats = handle.stats()
    engine_stats = getattr(handle.algorithm, "stats", {})
    print(
        f"{name} (follow): {stats.results} results, total virtual cost "
        f"{stats.vtime:.0f}, {stats.dominance_comparisons} dominance "
        "comparisons"
    )
    print(
        f"ingestion: {engine_stats.get('rows_ingested', 0)} rows absorbed "
        f"over {engine_stats.get('polls', 0)} polls, "
        f"{engine_stats.get('regions_added', 0)} regions added, "
        f"{engine_stats.get('cells_reopened', 0)} cells reopened"
    )
    if stats.stop_reason:
        print(f"stopped early: {stats.stop_reason}")
        return 0
    # Differential check: the streamed run must equal a one-shot run over
    # the final table contents (the tables after every arrival landed).
    reference = session.execute(
        workload.query().bind(live), algorithm=name, share_partitions=False
    )
    reference.drain()
    streamed = {r.key() for r in handle.results}
    oneshot = {r.key() for r in reference.results}
    verdict = "OK" if streamed == oneshot else "MISMATCH"
    print(
        f"one-shot equivalence: {verdict} "
        f"({len(streamed)} streamed vs {len(oneshot)} one-shot results)"
    )
    return 0 if verdict == "OK" else 1


def _one_algorithm(
    session: Session, spec: str, command: str = "run"
) -> list[str]:
    names = _algorithm_names(session, spec)
    if len(names) != 1:
        hint = (
            "all submitted queries share one algorithm"
            if command == "interleave"
            else "use compare for several"
        )
        raise SystemExit(f"{command} takes exactly one algorithm; {hint}")
    return names


def _cmd_compare(args: argparse.Namespace) -> int:
    session = _session(args)
    names = _algorithm_names(session, args.algorithms)
    workload = _workload(args)
    tables, backends = _resolve_sources(args, workload)
    bound = workload.query().bind(tables)
    if backends:
        print(f"sources: {_backend_line(tables, backends)}")
    report = session.compare(bound, names, verify=not args.no_verify)
    print("Progressiveness (virtual time to reach each output fraction):")
    print(report.progressiveness_table())
    print("\nTotal execution cost:")
    print(report.total_time_table())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.query_file:
        with open(args.query_file) as f:
            text = f.read()
    else:
        text = args.query
    if not text:
        raise SystemExit("provide --query or --query-file")
    session = _session(args)
    for spec in args.table:
        name, _, path = spec.partition("=")
        if not path:
            raise SystemExit(f"--table expects NAME=PATH, got {spec!r}")
        if is_source_uri(path):
            session.open_source(path, name)
        else:
            session.register_table(Table.from_csv(name, path), name)
    [name] = _one_algorithm(session, args.algorithm, command="query")
    budget = (
        StreamBudget(max_results=args.limit) if args.limit else None
    )
    stream = session.execute(text, algorithm=name, budget=budget)
    for result in stream:
        print(result.outputs)
    stats = stream.stats()
    first = "-" if stats.time_to_first is None else f"{stats.time_to_first:.0f}"
    print(
        f"\n{name}: {stats.results} results, first at t={first}, "
        f"total cost {stats.vtime:.0f}"
    )
    if stats.stop_reason:
        print(f"stopped early: {stats.stop_reason}")
    return 0


def _cmd_interleave(args: argparse.Namespace) -> int:
    """Interleave N concurrent queries through the scheduler (demo)."""
    session = _session(args)
    [name] = _one_algorithm(session, args.algorithm, command="interleave")
    sharing = not args.no_share
    scheduler = session.scheduler(
        SchedulerConfig(
            policy=args.policy,
            max_active=args.max_active,
            quantum=args.quantum,
            share_partitions=sharing,
        )
    )
    budget = _budget(args)
    # --source overrides imply one shared set of backends for every query
    # (there is exactly one columnar dir / database per alias).
    workload = _workload(args)
    shared_tables, backends = _resolve_sources(args, workload)
    shared_bound = None
    if args.shared_tables or backends:
        shared_bound = workload.query().bind(shared_tables)
    query_backends: dict[str, str] = {}
    for i in range(args.concurrency):
        if shared_bound is not None:
            bound, qname = shared_bound, f"q{i}(shared)"
            tables = shared_tables
        else:
            per_query = SyntheticWorkload(
                distribution=args.distribution, n=args.n, d=args.d,
                sigma=args.sigma, seed=args.seed + i,
            )
            tables = per_query.tables()
            bound = per_query.query().bind(tables)
            qname = f"q{i}(seed={args.seed + i})"
        scheduler.submit(bound, algorithm=name, budget=budget, name=qname)
        query_backends[qname] = _backend_line(tables, backends)
    print(
        f"interleaving {args.concurrency} queries ({name}) under "
        f"{args.policy}, quantum={args.quantum}, "
        f"sharing={'on' if sharing else 'off'}"
    )
    for qname, line in query_backends.items():
        print(f"  {qname}: {line}")
    for query, result in scheduler.run():
        if args.stream:
            print(
                f"  [{query.name}] t_global={scheduler.global_vtime:>12.0f}"
                f"  {result.outputs}"
            )
    print(
        f"\n{'query':<16}{'state':<18}{'results':>8}{'steps':>7}"
        f"{'vtime':>12}{'first@global':>14}"
    )
    for query in scheduler.queries:
        first = query.first_result_global_vtime
        print(
            f"{query.name:<16}{query.state:<18}{len(query.results):>8}"
            f"{query.steps:>7}{query.clock.now():>12.0f}"
            f"{'-' if first is None else format(first, '>14.0f'):>14}"
        )
    rec = scheduler.interleaving
    print(
        f"\ndispatches={rec.dispatches}  switches={rec.switches()}  "
        f"fairness-spread={rec.fairness_spread():.2f}  "
        f"total virtual work={scheduler.global_vtime:.0f}"
    )
    cache = scheduler.cache_stats()
    print(
        f"partition cache: hits={cache.hits}  misses={cache.misses}  "
        f"evictions={cache.evictions}  entries={cache.entries}  "
        f"hit-rate={cache.hit_rate:.0%}"
    )
    return 0


def _workload_sql(workload: SyntheticWorkload) -> str:
    """The SQL form of the synthetic workload's query (client copy-paste)."""
    left, right = workload.left_alias, workload.right_alias
    maps = ", ".join(
        f"({left}.a{i} + {right}.b{i}) AS x{i}" for i in range(workload.d)
    )
    prefs = " AND ".join(f"LOWEST(x{i})" for i in range(workload.d))
    return (
        f"SELECT {left}.id, {right}.id, {maps} "
        f"FROM {left} {left}, {right} {right} "
        f"WHERE {left}.jkey = {right}.jkey PREFERRING {prefs}"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Start the streaming HTTP server over a session's tables."""
    from repro.serve import AdmissionPolicy, QueryServer, Watermarks

    session = _session(args)
    if args.table:
        for spec in args.table:
            name, _, path = spec.partition("=")
            if not path:
                raise SystemExit(f"--table expects NAME=PATH, got {spec!r}")
            if is_source_uri(path):
                session.open_source(path, name)
            else:
                session.register_table(Table.from_csv(name, path), name)
    else:
        workload = _workload(args)
        session.register_tables(workload.tables())
        print(f"tables: synthetic workload (seed={args.seed}); example query:")
        print(f"  {_workload_sql(workload)}")
    policy = AdmissionPolicy(
        max_active=args.max_active,
        max_per_client=args.max_per_client,
        max_wall_seconds=args.timeout_wall,
        max_vtime=args.timeout_vtime,
    )
    watermarks = Watermarks(high=args.high_water, low=args.low_water)
    server = QueryServer(
        session,
        host=args.host,
        port=args.port,
        scheduler=args.scheduler,
        admission=policy,
        watermarks=watermarks,
    )
    server.run()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.core.explain import explain, explain_estimates

    workload = _workload(args)
    if args.no_run:
        if args.format == "json":
            print("--format json requires the estimate report", file=sys.stderr)
            return 2
        print(explain(workload.bound()).render(top=args.top))
        return 0
    report = explain_estimates(workload.bound())
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    print(explain(workload.bound()).render(top=args.top))
    print()
    print(report.render())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    workload = _workload(args)
    tables = workload.tables()
    left = tables[workload.left_alias]
    right = tables[workload.right_alias]
    if args.format == "csv":
        left_path = f"{args.prefix}_{workload.left_alias}.csv"
        right_path = f"{args.prefix}_{workload.right_alias}.csv"
        left.to_csv(left_path)
        right.to_csv(right_path)
    elif args.format == "columnar":
        left_path = write_columnar(
            f"{args.prefix}_{workload.left_alias}.col", left
        )
        right_path = write_columnar(
            f"{args.prefix}_{workload.right_alias}.col", right
        )
        print(
            "use with: --source "
            f"{workload.left_alias}=columnar:{left_path} "
            f"--source {workload.right_alias}=columnar:{right_path}"
        )
    else:  # sqlite
        db = f"{args.prefix}.sqlite"
        open(db, "a").close()
        SQLiteSource.write_table(db, workload.left_alias, left)
        SQLiteSource.write_table(db, workload.right_alias, right)
        left_path = right_path = db
        print(
            "use with: --source "
            f"{workload.left_alias}=sqlite:{db}?table={workload.left_alias} "
            f"--source {workload.right_alias}=sqlite:{db}"
            f"?table={workload.right_alias}"
        )
    print(f"wrote {left_path} ({len(left)} rows) and {right_path} ({len(right)} rows)")
    return 0


def _cmd_algorithms(args: argparse.Namespace) -> int:
    session = Session()
    print(f"{'name':<22}{'configurable':<14}description")
    for entry in session.registry.entries():
        extras = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        print(
            f"{entry.name:<22}{'yes' if entry.configurable else 'no':<14}"
            f"{entry.description}{extras}"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import list_rules, run_lint

    if args.list_rules:
        return list_rules(sys.stdout)
    return run_lint(args.paths, fmt=args.format, rules=args.rules)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ProgXe: progressive SkyMapJoin query evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    preset_help = f"engine configuration preset: {', '.join(PRESETS)}"

    p_run = sub.add_parser("run", help="run one algorithm on a synthetic workload")
    _add_workload_args(p_run)
    _add_budget_args(p_run)
    _add_source_args(p_run)
    p_run.add_argument("--algorithm", "-a", default="ProgXe",
                       help="algorithm name (see the 'algorithms' command)")
    p_run.add_argument("--preset", choices=list(PRESETS), help=preset_help)
    p_run.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for phase-2 joins (default 1 = in-process); "
        "output is byte-identical at any count; degrades to 1 with a "
        "warning when the machine cannot honour the request",
    )
    p_run.add_argument("--stream", action="store_true",
                       help="print every result as it is emitted")
    p_run.add_argument(
        "--follow", action="store_true",
        help="streaming-ingestion demo: plan over half the rows, absorb "
        "the rest in batches mid-run, and verify against one-shot results",
    )
    p_run.add_argument(
        "--arrival-chunks", type=int, default=4,
        help="arrival batches for --follow (default 4)",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare algorithms on one workload")
    _add_workload_args(p_cmp)
    _add_source_args(p_cmp)
    p_cmp.add_argument("--algorithms", "-a", default="variants",
                       help="'all', 'variants', or a comma list of names")
    p_cmp.add_argument("--preset", choices=list(PRESETS), help=preset_help)
    p_cmp.add_argument("--no-verify", action="store_true",
                       help="skip the result-set agreement check")
    p_cmp.set_defaults(fn=_cmd_compare)

    p_query = sub.add_parser("query", help="run an SMJ query over CSV tables")
    p_query.add_argument("--query", help="query text")
    p_query.add_argument("--query-file", help="file containing the query")
    p_query.add_argument("--table", action="append", default=[],
                         metavar="NAME=PATH",
                         help="bind table NAME to a CSV file or a source URI "
                         "(columnar:PATH, sqlite:PATH?table=T)")
    p_query.add_argument("--algorithm", "-a", default="ProgXe")
    p_query.add_argument("--preset", choices=list(PRESETS), help=preset_help)
    p_query.add_argument("--limit", type=int, default=0,
                         help="stop cleanly after this many results (0 = all)")
    p_query.set_defaults(fn=_cmd_query)

    p_il = sub.add_parser(
        "interleave",
        help="interleave N concurrent queries via the cooperative scheduler",
    )
    _add_workload_args(p_il)
    _add_budget_args(p_il)
    _add_source_args(p_il)
    p_il.add_argument(
        "--concurrency", "-c", type=int, default=4,
        help="number of concurrent queries to admit (workload seeds "
        "SEED..SEED+N-1)",
    )
    p_il.add_argument(
        "--policy", choices=list(SCHEDULING_POLICIES), default="round-robin",
        help="cross-query dispatch policy",
    )
    p_il.add_argument(
        "--quantum", type=int, default=1,
        help="consecutive kernel steps per dispatch (1 = max interleaving)",
    )
    p_il.add_argument(
        "--max-active", type=int, default=None,
        help="admission ceiling; further queries wait (default: admit all)",
    )
    p_il.add_argument("--algorithm", "-a", default="ProgXe",
                      help="algorithm to run each query with")
    p_il.add_argument("--preset", choices=list(PRESETS), help=preset_help)
    p_il.add_argument("--stream", action="store_true",
                      help="print every result as it is emitted")
    p_il.add_argument(
        "--shared-tables", action="store_true",
        help="submit all queries over ONE workload's tables (seed=SEED) so "
        "cross-query partition sharing kicks in; default gives each query "
        "its own tables",
    )
    p_il.add_argument(
        "--no-share", action="store_true",
        help="disable cross-query work sharing: every query partitions its "
        "inputs privately instead of reusing the session's partition cache",
    )
    p_il.set_defaults(fn=_cmd_interleave)

    p_serve = sub.add_parser(
        "serve",
        help="start the streaming HTTP server (POST /query, NDJSON/SSE)",
    )
    _add_workload_args(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=8484,
                         help="bind port (0 picks a free one)")
    p_serve.add_argument(
        "--table", action="append", default=[], metavar="NAME=PATH",
        help="serve table NAME from a CSV file or source URI "
        "(columnar:PATH, sqlite:PATH?table=T); default: the synthetic "
        "workload's tables",
    )
    p_serve.add_argument(
        "--scheduler", choices=list(SCHEDULER_PRESETS), default="serving",
        help="scheduler preset driving the serving loop",
    )
    p_serve.add_argument("--preset", choices=list(PRESETS), help=preset_help)
    p_serve.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for each served query's phase-2 joins "
        "(default 1); degrades to 1 with a warning when unavailable",
    )
    p_serve.add_argument(
        "--max-active", type=int, default=64,
        help="reject (429) beyond this many concurrent streaming queries",
    )
    p_serve.add_argument(
        "--max-per-client", type=int, default=None,
        help="per-client concurrent-query quota (default: none)",
    )
    p_serve.add_argument(
        "--timeout-wall", type=float, default=None,
        help="per-query wall-clock timeout ceiling in seconds; clamps "
        "client-requested timeouts",
    )
    p_serve.add_argument(
        "--timeout-vtime", type=float, default=None,
        help="per-query virtual-time timeout ceiling; clamps "
        "client-requested timeouts",
    )
    p_serve.add_argument(
        "--high-water", type=int, default=32 * 1024,
        help="pause a query's kernel once its client buffers this many bytes",
    )
    p_serve.add_argument(
        "--low-water", type=int, default=8 * 1024,
        help="resume once the client's buffer drains to this many bytes",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_gen = sub.add_parser(
        "generate", help="write a synthetic workload to CSV/columnar/SQLite"
    )
    _add_workload_args(p_gen)
    p_gen.add_argument("--prefix", default="workload",
                       help="output file prefix (PREFIX_R.csv, PREFIX_T.csv)")
    p_gen.add_argument(
        "--format", choices=["csv", "columnar", "sqlite"], default="csv",
        help="storage backend to write: CSV files, mmap-able columnar "
        "directories, or one SQLite database with both tables",
    )
    p_gen.set_defaults(fn=_cmd_generate)

    p_explain = sub.add_parser(
        "explain",
        help="show the ProgXe plan plus the cost-based planner's "
        "estimate-vs-actual report",
    )
    _add_workload_args(p_explain)
    p_explain.add_argument("--top", type=int, default=10,
                           help="regions to list, by rank")
    p_explain.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="estimate report output format",
    )
    p_explain.add_argument(
        "--no-run", action="store_true",
        help="plan-only dry run: skip execution and the estimate report",
    )
    p_explain.set_defaults(fn=_cmd_explain)

    p_algos = sub.add_parser("algorithms", help="list registered algorithms")
    p_algos.set_defaults(fn=_cmd_algorithms)

    p_lint = sub.add_parser(
        "lint", help="run the repo's static analyzer over Python sources"
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files or directories to scan (default: src if present)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    p_lint.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE-ID",
        help="only run this rule (repeatable)",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    p_lint.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
