"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Execute one algorithm on a synthetic workload; print the progressive
    output stream (or just the summary).

``compare``
    Run several algorithms on the same workload; print the paper-style
    progressiveness and total-cost tables.

``query``
    Parse an SMJ query (the paper's SQL-with-PREFERRING surface) and run
    it progressively against CSV tables.

``generate``
    Write a synthetic workload's two tables to CSV files.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.variants import ALGORITHMS, PROGXE_VARIANTS
from repro.data.workloads import SyntheticWorkload
from repro.errors import ReproError
from repro.query.parser import parse_query
from repro.runtime.clock import VirtualClock
from repro.runtime.compare import compare_algorithms
from repro.runtime.runner import run_algorithm
from repro.storage.table import Table


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--distribution", "-D",
        choices=["independent", "correlated", "anticorrelated"],
        default="independent", help="attribute correlation regime",
    )
    parser.add_argument("-n", type=int, default=400, help="rows per table")
    parser.add_argument("-d", type=int, default=2, help="skyline dimensions")
    parser.add_argument("--sigma", type=float, default=0.01,
                        help="target join selectivity")
    parser.add_argument("--seed", type=int, default=7, help="RNG seed")


def _workload(args: argparse.Namespace) -> SyntheticWorkload:
    return SyntheticWorkload(
        distribution=args.distribution, n=args.n, d=args.d,
        sigma=args.sigma, seed=args.seed,
    )


def _resolve_algorithms(spec: str) -> dict:
    if spec == "all":
        return dict(ALGORITHMS)
    if spec == "variants":
        return dict(PROGXE_VARIANTS)
    chosen = {}
    for name in spec.split(","):
        name = name.strip()
        if name not in ALGORITHMS:
            raise SystemExit(
                f"unknown algorithm {name!r}; available: {', '.join(ALGORITHMS)}"
            )
        chosen[name] = ALGORITHMS[name]
    return chosen


def _cmd_run(args: argparse.Namespace) -> int:
    algorithms = _resolve_algorithms(args.algorithm)
    if len(algorithms) != 1:
        raise SystemExit("run takes exactly one algorithm; use compare for several")
    [(name, factory)] = algorithms.items()
    bound = _workload(args).bound()
    clock = VirtualClock()
    algo = factory(bound, clock)
    count = 0
    for result in algo.run():
        count += 1
        if args.stream:
            print(f"t={clock.now():>12.0f}  {result.outputs}")
    print(f"{name}: {count} results, total virtual cost {clock.now():.0f}, "
          f"{clock.count('dominance_cmp')} dominance comparisons")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    algorithms = _resolve_algorithms(args.algorithms)
    bound = _workload(args).bound()
    report = compare_algorithms(algorithms, bound, verify=not args.no_verify)
    print("Progressiveness (virtual time to reach each output fraction):")
    print(report.progressiveness_table())
    print("\nTotal execution cost:")
    print(report.total_time_table())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.query_file:
        with open(args.query_file) as f:
            text = f.read()
    else:
        text = args.query
    if not text:
        raise SystemExit("provide --query or --query-file")
    query = parse_query(text)
    tables = {}
    for spec in args.table:
        name, _, path = spec.partition("=")
        if not path:
            raise SystemExit(f"--table expects NAME=PATH, got {spec!r}")
        tables[name] = Table.from_csv(name, path)
    bound = query.bind_by_table_name(tables)
    algorithms = _resolve_algorithms(args.algorithm)
    [(name, factory)] = algorithms.items()
    run = run_algorithm(factory, bound)
    for result in run.results[: args.limit] if args.limit else run.results:
        print(result.outputs)
    summary = run.summary()
    print(
        f"\n{name}: {summary['results']} results, "
        f"first at t={summary['time_to_first']}, "
        f"total cost {summary['total_vtime']:.0f}"
    )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.core.explain import explain

    bound = _workload(args).bound()
    print(explain(bound).render(top=args.top))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    workload = _workload(args)
    tables = workload.tables()
    left = tables[workload.left_alias]
    right = tables[workload.right_alias]
    left_path = f"{args.prefix}_{workload.left_alias}.csv"
    right_path = f"{args.prefix}_{workload.right_alias}.csv"
    left.to_csv(left_path)
    right.to_csv(right_path)
    print(f"wrote {left_path} ({len(left)} rows) and {right_path} ({len(right)} rows)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ProgXe: progressive SkyMapJoin query evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one algorithm on a synthetic workload")
    _add_workload_args(p_run)
    p_run.add_argument("--algorithm", "-a", default="ProgXe",
                       help=f"one of: {', '.join(ALGORITHMS)}")
    p_run.add_argument("--stream", action="store_true",
                       help="print every result as it is emitted")
    p_run.set_defaults(fn=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare algorithms on one workload")
    _add_workload_args(p_cmp)
    p_cmp.add_argument("--algorithms", "-a", default="variants",
                       help="'all', 'variants', or a comma list of names")
    p_cmp.add_argument("--no-verify", action="store_true",
                       help="skip the result-set agreement check")
    p_cmp.set_defaults(fn=_cmd_compare)

    p_query = sub.add_parser("query", help="run an SMJ query over CSV tables")
    p_query.add_argument("--query", help="query text")
    p_query.add_argument("--query-file", help="file containing the query")
    p_query.add_argument("--table", action="append", default=[],
                         metavar="NAME=PATH", help="bind table NAME to a CSV file")
    p_query.add_argument("--algorithm", "-a", default="ProgXe")
    p_query.add_argument("--limit", type=int, default=0,
                         help="print at most this many results (0 = all)")
    p_query.set_defaults(fn=_cmd_query)

    p_gen = sub.add_parser("generate", help="write a synthetic workload to CSV")
    _add_workload_args(p_gen)
    p_gen.add_argument("--prefix", default="workload",
                       help="output file prefix (PREFIX_R.csv, PREFIX_T.csv)")
    p_gen.set_defaults(fn=_cmd_generate)

    p_explain = sub.add_parser(
        "explain", help="show the ProgXe plan for a workload (no execution)"
    )
    _add_workload_args(p_explain)
    p_explain.add_argument("--top", type=int, default=10,
                           help="regions to list, by rank")
    p_explain.set_defaults(fn=_cmd_explain)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
