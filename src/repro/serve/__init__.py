"""The streaming server edge: ``repro.serve``.

Turns one :class:`~repro.session.service.Session` into a long-lived
asyncio HTTP server that streams provably-final results to many
concurrent clients, with admission control, per-client backpressure, and
per-query failure isolation.  Stdlib only — no framework dependency.

Layers (each unit-testable without sockets):

* :mod:`repro.serve.protocol` — request validation and event frames,
* :mod:`repro.serve.admission` — capacity / quota / timeout ceilings,
* :mod:`repro.serve.backpressure` — slow clients pause their own kernel,
* :mod:`repro.serve.app` — the asyncio HTTP server tying them together.

Start one from the CLI (``python -m repro serve``) or in-process::

    from repro.serve import QueryServer

    server = QueryServer(session, port=8484)
    await server.start()
    ...
    await server.stop()          # graceful: drains active streams
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    DeadlineGuard,
)
from repro.serve.app import QueryServer, ServedQuery
from repro.serve.backpressure import (
    BackpressureBridge,
    OutboundChannel,
    Watermarks,
)
from repro.serve.protocol import (
    CONTENT_TYPES,
    FORMATS,
    FrameFactory,
    QueryRequest,
    encode_frame,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "BackpressureBridge",
    "CONTENT_TYPES",
    "DeadlineGuard",
    "FORMATS",
    "FrameFactory",
    "OutboundChannel",
    "QueryRequest",
    "QueryServer",
    "ServedQuery",
    "Watermarks",
    "encode_frame",
]
