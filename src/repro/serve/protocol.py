"""Wire protocol of the streaming server edge.

Two halves, both free of any I/O so they unit-test without sockets:

* **Requests** — :class:`QueryRequest` is the validated form of one query
  submission (JSON body of ``POST /query`` or the query string of
  ``GET /query``).  It carries the paper's SQL surface plus execution
  options (algorithm, engine preset/config, budgets) and serving options
  (timeouts, frame format, progress cadence, client identity for quotas).
  Validation failures raise :class:`~repro.errors.ProtocolError`, which the
  server maps to HTTP 400.

* **Frames** — every streamed response is a sequence of event frames with
  a single monotonically increasing ``seq`` number:

  ========== ===========================================================
  event      meaning
  ========== ===========================================================
  accepted   admission succeeded; carries qid / name / algorithm
  result     one provably-final result (``index`` is 1-based)
  progress   periodic execution snapshot (steps, results, vtime, state)
  error      the query failed; carries the reason
  complete   terminal frame: final state, stop reason and statistics
  ========== ===========================================================

  :class:`FrameFactory` builds them; :func:`encode_frame` renders a frame
  as NDJSON (one JSON object per line) or SSE (``event:`` / ``data:``
  blocks).  Because the sequence number lives *in* the frame, the two
  encodings carry identical content.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Mapping

from repro.errors import ProtocolError
from repro.query.smj import ResultTuple
from repro.session.config import EngineConfig
from repro.session.stream import StreamBudget

#: Frame encodings the server can stream.
FORMATS: tuple[str, ...] = ("ndjson", "sse")

#: Content-Type header value per format.
CONTENT_TYPES: dict[str, str] = {
    "ndjson": "application/x-ndjson",
    "sse": "text/event-stream",
}

_FLOAT_FIELDS = (
    "max_vtime",
    "max_wall_seconds",
    "timeout_vtime",
    "timeout_wall_seconds",
)
_INT_FIELDS = ("max_results", "max_comparisons", "progress_every")
_BOOL_FIELDS = ("follow",)

#: Query-string spellings accepted for boolean request fields.
_BOOL_STRINGS = {
    "true": True, "1": True, "yes": True, "on": True,
    "false": False, "0": False, "no": False, "off": False,
}


@dataclass(frozen=True)
class QueryRequest:
    """One validated query submission to the serving edge.

    sql:
        The query in the paper's SQL-with-PREFERRING surface (required).
    algorithm:
        Registered algorithm name or alias.
    preset:
        Engine configuration preset name (see
        :data:`repro.session.config.PRESETS`).
    config:
        Engine configuration overrides applied on top of the preset (or
        the default configuration), e.g. ``{"partitioning": "quadtree",
        "use_vectorized": false}``.
    max_results / max_vtime / max_comparisons / max_wall_seconds:
        Client-requested :class:`~repro.session.stream.StreamBudget`
        ceilings — the stream stops *cleanly* (state
        ``budget_exhausted``) when one is hit.
    timeout_wall_seconds / timeout_vtime:
        Admission-layer timeouts: when exceeded, the server *cancels* the
        query through the scheduler (state ``cancelled``, reason naming
        the timeout).  Server-side policy ceilings clamp these.
    follow:
        Streaming ingestion: keep the query's arrival window open so rows
        appended to its source tables while it runs are absorbed (see
        :attr:`repro.session.config.EngineConfig.follow`).  A follow query
        only completes when its window closes — give it a timeout (the
        server then *closes the window* rather than cancelling, so every
        absorbed row is still fully processed) or close it explicitly.
    format:
        ``"ndjson"`` (default) or ``"sse"``.
    progress_every:
        Emit a ``progress`` frame every N kernel steps (0 disables).
    client:
        Client identity for per-client admission quotas; defaults to the
        connection's peer address.
    name:
        Optional query display name, echoed in the ``accepted`` frame.

    Example::

        request = QueryRequest.from_mapping({
            "sql": "SELECT ... PREFERRING LOWEST(x)",
            "algorithm": "ProgXe+",
            "max_results": 10,
            "format": "sse",
        })
        budget = request.budget()           # StreamBudget or None
        config = request.engine_config()    # EngineConfig or None
    """

    sql: str
    algorithm: str = "ProgXe"
    preset: str | None = None
    config: Mapping[str, Any] | None = None
    max_results: int | None = None
    max_vtime: float | None = None
    max_comparisons: int | None = None
    max_wall_seconds: float | None = None
    timeout_wall_seconds: float | None = None
    timeout_vtime: float | None = None
    follow: bool = False
    format: str = "ndjson"
    progress_every: int = 0
    client: str | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.sql, str) or not self.sql.strip():
            raise ProtocolError("request field 'sql' must be a non-empty string")
        if self.format not in FORMATS:
            raise ProtocolError(
                f"request field 'format' must be one of {FORMATS}, "
                f"got {self.format!r}"
            )
        if self.progress_every < 0:
            raise ProtocolError(
                f"request field 'progress_every' must be >= 0, "
                f"got {self.progress_every}"
            )
        for field in (*_FLOAT_FIELDS, "max_results", "max_comparisons"):
            value = getattr(self, field)
            if value is not None and value <= 0:
                raise ProtocolError(
                    f"request field {field!r} must be positive, got {value}"
                )
        if self.config is not None and not isinstance(self.config, Mapping):
            raise ProtocolError(
                "request field 'config' must be an object of EngineConfig "
                f"overrides, got {type(self.config).__name__}"
            )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "QueryRequest":
        """Validate a decoded JSON object (or query-string dict).

        Unknown keys are rejected — a typo in a budget field must not
        silently run an unbounded query.  String values for numeric fields
        are coerced, so URL query parameters work unchanged.
        """
        if not isinstance(mapping, Mapping):
            raise ProtocolError(
                f"request body must be a JSON object, got "
                f"{type(mapping).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(mapping) - known
        if unknown:
            raise ProtocolError(
                f"unknown request fields: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs: dict[str, Any] = dict(mapping)
        for field in _FLOAT_FIELDS:
            kwargs[field] = _coerce(mapping.get(field), float, field)
        for field in _INT_FIELDS:
            kwargs[field] = _coerce(mapping.get(field), int, field)
        for field in _BOOL_FIELDS:
            kwargs[field] = _coerce_bool(mapping.get(field), field)
        if kwargs.get("progress_every") is None:
            kwargs["progress_every"] = 0
        if isinstance(kwargs.get("config"), str):
            try:
                kwargs["config"] = json.loads(kwargs["config"])
            except json.JSONDecodeError as exc:
                raise ProtocolError(
                    f"request field 'config' is not valid JSON: {exc}"
                ) from None
        try:
            return cls(**kwargs)
        except TypeError:
            raise ProtocolError(
                "request is missing the required 'sql' field"
            ) from None

    def budget(self) -> StreamBudget | None:
        """The client-requested stream budget, or ``None`` if unbounded."""
        budget = StreamBudget(
            max_vtime=self.max_vtime,
            max_comparisons=self.max_comparisons,
            max_results=self.max_results,
            max_wall_seconds=self.max_wall_seconds,
        )
        return None if budget.unlimited else budget

    def engine_config(self) -> EngineConfig | None:
        """Resolve ``preset`` + ``config`` overrides into an EngineConfig.

        Returns ``None`` when neither was given, so the session default
        applies.  Invalid preset names or override values surface as
        :class:`~repro.errors.ProtocolError`.
        """
        if self.preset is None and self.config is None and not self.follow:
            return None
        try:
            base = (
                EngineConfig.preset(self.preset)
                if self.preset is not None
                else EngineConfig()
            )
            if self.config:
                base = base.with_options(**dict(self.config))
            if self.follow:
                base = base.with_options(follow=True)
            return base
        except TypeError as exc:
            raise ProtocolError(f"invalid engine config override: {exc}") from None
        except Exception as exc:  # QueryError from validation
            raise ProtocolError(str(exc)) from None


def _coerce_bool(value: Any, field: str) -> bool:
    """Coerce a boolean request field; query-string spellings accepted."""
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, str) and value.lower() in _BOOL_STRINGS:
        return _BOOL_STRINGS[value.lower()]
    raise ProtocolError(
        f"request field {field!r} must be a boolean "
        f"(or one of {sorted(_BOOL_STRINGS)}), got {value!r}"
    )


def _coerce(
    value: Any, kind: type[float] | type[int], field: str
) -> float | int | None:
    if value is None:
        return None
    try:
        coerced = kind(value)
    except (TypeError, ValueError):
        raise ProtocolError(
            f"request field {field!r} must be a {kind.__name__}, "
            f"got {value!r}"
        ) from None
    return coerced


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
class FrameFactory:
    """Builds the event frames of one streamed response.

    Owns the stream's monotonic sequence counter: every frame built by one
    factory carries the next ``seq`` value, whatever its event type, so a
    client can detect loss or reordering with a single integer check.

    Example::

        frames = FrameFactory()
        frames.accepted(qid=3, name="q3", algorithm="ProgXe")  # seq 0
        frames.result(result)                                  # seq 1
        frames.complete(state="completed", stats={...})        # seq 2
    """

    def __init__(self) -> None:
        self._seq = 0

    @property
    def next_seq(self) -> int:
        """The sequence number the next frame will carry."""
        return self._seq

    def _frame(self, event: str, **payload: Any) -> dict[str, Any]:
        frame = {"seq": self._seq, "event": event, **payload}
        self._seq += 1
        return frame

    def accepted(
        self, *, qid: int, name: str, algorithm: str | None
    ) -> dict[str, Any]:
        """The stream's first frame: the query was admitted."""
        return self._frame(
            "accepted", qid=qid, name=name, algorithm=algorithm
        )

    def result(self, index: int, result: ResultTuple) -> dict[str, Any]:
        """One provably-final result; ``index`` is 1-based emission order."""
        return self._frame("result", index=index, values=result.outputs)

    def progress(
        self, *, steps: int, results: int, vtime: float, state: str
    ) -> dict[str, Any]:
        """Periodic execution snapshot between results."""
        return self._frame(
            "progress", steps=steps, results=results, vtime=vtime, state=state
        )

    def error(self, message: str) -> dict[str, Any]:
        """The query failed; a ``complete`` frame still follows."""
        return self._frame("error", error=message)

    def complete(
        self,
        *,
        state: str,
        stop_reason: str | None = None,
        stats: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Terminal frame: every stream ends with exactly one of these."""
        return self._frame(
            "complete",
            state=state,
            stop_reason=stop_reason,
            stats=dict(stats) if stats else None,
        )


def encode_frame(frame: Mapping[str, Any], format: str = "ndjson") -> bytes:
    """Render one frame in the requested wire format.

    NDJSON: the frame as one JSON object terminated by ``\\n``.  SSE: an
    ``event:`` line naming the frame's event plus a ``data:`` line with the
    same JSON object, terminated by a blank line.
    """
    if format not in FORMATS:
        raise ProtocolError(f"unknown frame format {format!r}")
    data = json.dumps(frame, default=str, separators=(",", ":"))
    if format == "sse":
        return f"event: {frame['event']}\ndata: {data}\n\n".encode()
    return data.encode() + b"\n"
