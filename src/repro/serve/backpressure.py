"""Backpressure bridge: slow clients pause their own kernel, nobody else's.

The serving pump (producer) runs kernel steps and pushes encoded frames
into a per-connection :class:`OutboundChannel`; the connection's writer
task (consumer) pops frames and writes them to the socket, honouring the
transport's own flow control via ``drain()``.  When a client stops
reading, its socket buffer fills, ``drain()`` blocks the writer, and the
channel's buffered bytes climb — crossing the high-water mark invokes the
pause callback, which a :class:`BackpressureBridge` wires to that one
query's :meth:`~repro.session.scheduler.ScheduledQuery.pause`.  The
scheduler simply stops dispatching the paused query: no unbounded
buffering, no head-of-line blocking of other queries.  When the writer
drains the channel below the low-water mark, the bridge resumes the query.

Pause/resume never mutates execution state (the kernel contract), so a
throttled query's step and result sequence is byte-identical to an
unthrottled run — property-tested in ``tests/test_scheduler_serving.py``.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import ServeError

#: Defaults sized for interactive result streams: a few hundred frames.
DEFAULT_HIGH_WATER = 32 * 1024
DEFAULT_LOW_WATER = 8 * 1024


@dataclass(frozen=True)
class Watermarks:
    """High/low buffered-byte thresholds of one outbound channel.

    The pause callback fires when buffered bytes *exceed* ``high``; the
    resume callback when they fall back to ``low`` or below.  The gap is
    hysteresis — resuming at the high mark would flap pause/resume on
    every frame.
    """

    high: int = DEFAULT_HIGH_WATER
    low: int = DEFAULT_LOW_WATER

    def __post_init__(self) -> None:
        if self.high <= 0:
            raise ServeError(f"high watermark must be positive, got {self.high}")
        if not 0 <= self.low < self.high:
            raise ServeError(
                f"low watermark must satisfy 0 <= low < high, "
                f"got low={self.low} high={self.high}"
            )


class OutboundChannel:
    """Single-producer single-consumer frame buffer with watermark callbacks.

    Both ends live on one event loop, so the implementation is a plain
    deque plus an :class:`asyncio.Event` — no locks.  The channel is
    *bounded by pausing the producer*, never by dropping frames or
    blocking the pump: ``put`` always succeeds while open (triggering
    ``on_pause`` past the high-water mark), and ``get`` triggers
    ``on_resume`` once the backlog drains to the low-water mark.

    Example::

        channel = OutboundChannel(Watermarks(high=1024, low=256),
                                  on_pause=query.pause,
                                  on_resume=query.resume)
        channel.put(frame_bytes)        # producer (the scheduling pump)
        data = await channel.get()      # consumer (the connection writer)
        channel.close()                 # get() returns None once drained
    """

    def __init__(
        self,
        watermarks: Watermarks | None = None,
        *,
        on_pause: Callable[[], None] | None = None,
        on_resume: Callable[[], None] | None = None,
    ) -> None:
        self.watermarks = watermarks or Watermarks()
        self._on_pause = on_pause
        self._on_resume = on_resume
        self._frames: deque[bytes] = deque()
        self._buffered = 0
        self._ready = asyncio.Event()
        self._closed = False
        self.paused = False
        #: Lifetime counters, surfaced by the server's /stats endpoint.
        self.pauses = 0
        self.resumes = 0
        self.frames_in = 0
        self.frames_out = 0

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently queued for the writer."""
        return self._buffered

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, data: bytes) -> bool:
        """Queue one encoded frame; returns False if the channel is closed.

        A closed channel (client gone) swallows the frame silently — the
        producing pump learns of the disconnect through the query's
        cancellation, not through its frame routing.
        """
        if self._closed:
            return False
        self._frames.append(data)
        self._buffered += len(data)
        self.frames_in += 1
        self._ready.set()
        if not self.paused and self._buffered > self.watermarks.high:
            self.paused = True
            self.pauses += 1
            if self._on_pause is not None:
                self._on_pause()
        return True

    async def get(self) -> bytes | None:
        """Wait for the next frame; ``None`` once closed and drained."""
        while not self._frames:
            if self._closed:
                return None
            self._ready.clear()
            await self._ready.wait()
        data = self._frames.popleft()
        self._buffered -= len(data)
        self.frames_out += 1
        if self.paused and self._buffered <= self.watermarks.low:
            self.paused = False
            self.resumes += 1
            if self._on_resume is not None:
                self._on_resume()
        return data

    def close(self) -> None:
        """No more frames will be accepted; the consumer drains the rest."""
        self._closed = True
        self._ready.set()


class BackpressureBridge:
    """Wires one channel's watermarks to one scheduled query's kernel.

    The indirection (rather than handing ``handle.pause`` straight to the
    channel) exists so resuming can also *wake the serving pump* — after a
    slow client drains, somebody has to tell the scheduler there is
    runnable work again — and so pause/resume counts stay inspectable per
    query.
    """

    def __init__(
        self,
        handle,
        watermarks: Watermarks | None = None,
        *,
        on_runnable: Callable[[], None] | None = None,
    ) -> None:
        self.handle = handle
        self._on_runnable = on_runnable
        self.channel = OutboundChannel(
            watermarks, on_pause=self._pause, on_resume=self._resume
        )

    def _pause(self) -> None:
        self.handle.pause()

    def _resume(self) -> None:
        self.handle.resume()
        if self._on_runnable is not None:
            self._on_runnable()
