"""``python -m repro.serve`` — shorthand for ``python -m repro serve``."""

import sys

from repro.cli import main

if __name__ == "__main__":  # pragma: no cover - thin dispatch
    raise SystemExit(main(["serve", *sys.argv[1:]]))
