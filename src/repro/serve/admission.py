"""Admission control for the streaming server edge.

A progressive engine is only as responsive as its admission discipline: a
server that accepts every connection degrades everyone's time-to-first-
result at once.  This module keeps admission decisions *synchronous and
pure* — the asyncio layer asks, gets a decision object, and translates it
to HTTP — so the policy is unit-testable without sockets:

* :class:`AdmissionPolicy` — the server's validated ceilings: total
  concurrent streaming queries, per-client quota, and per-query wall/vtime
  timeout caps that clamp whatever the client asked for.
* :class:`AdmissionController` — the counter box enforcing the policy:
  ``try_admit`` either grants a slot or returns a 429-style rejection with
  a ``Retry-After`` hint; ``release`` returns the slot.
* :class:`DeadlineGuard` — the per-query timeout watcher.  The serving
  pump polls it and, on expiry, cancels the query *through the scheduler*
  (``ScheduledQuery.cancel``), which releases its admission slot at the
  next scheduling decision — even if the query is paused under
  backpressure at that moment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ServeError

#: HTTP status equivalents used by the server layer.
OK = 200
TOO_MANY_REQUESTS = 429

#: Cancellation-reason prefix for admission-enforced timeouts; clients and
#: benches detect a timed-out query by it.
TIMEOUT_REASON_PREFIX = "admission timeout:"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Validated serving ceilings.

    max_active:
        Server-wide cap on concurrently streaming queries; further
        submissions are rejected 429-style (``None`` admits everything).
        Distinct from the scheduler's ``max_active``, which *queues*
        admitted queries — the serving edge refuses instead, because an
        interactive client gains nothing from an unbounded queue.
    max_per_client:
        Concurrent-query quota per client identity (``None`` = no quota).
    max_wall_seconds / max_vtime:
        Hard per-query timeout ceilings.  A client may request a *shorter*
        timeout; a longer or absent request is clamped to these.  ``None``
        leaves the dimension unlimited unless the client asks.
    retry_after_seconds:
        The ``Retry-After`` hint attached to rejections.

    Example::

        policy = AdmissionPolicy(max_active=64, max_per_client=4,
                                 max_wall_seconds=30.0)
        controller = AdmissionController(policy)
        decision = controller.try_admit("client-7")
        if not decision.admitted:
            respond(429, decision.reason, decision.retry_after)
    """

    max_active: int | None = 64
    max_per_client: int | None = None
    max_wall_seconds: float | None = None
    max_vtime: float | None = None
    retry_after_seconds: float = 1.0

    def __post_init__(self) -> None:
        for name in ("max_active", "max_per_client"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ServeError(f"{name} must be >= 1, got {value}")
        for name in ("max_wall_seconds", "max_vtime", "retry_after_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ServeError(f"{name} must be positive, got {value}")

    def wall_limit(self, requested: float | None) -> float | None:
        """Effective wall timeout: the client's request clamped by policy."""
        return _clamp(requested, self.max_wall_seconds)

    def vtime_limit(self, requested: float | None) -> float | None:
        """Effective vtime timeout: the client's request clamped by policy."""
        return _clamp(requested, self.max_vtime)


def _clamp(requested: float | None, ceiling: float | None) -> float | None:
    if requested is None:
        return ceiling
    if ceiling is None:
        return requested
    return min(requested, ceiling)


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt.

    ``status`` is the HTTP status the server should answer with: 200 for
    an admitted query, 429 for a rejected one (with ``reason`` and a
    ``retry_after`` hint).
    """

    admitted: bool
    status: int = OK
    reason: str | None = None
    retry_after: float | None = None


class AdmissionController:
    """Enforces an :class:`AdmissionPolicy` over live query counts.

    Purely synchronous bookkeeping — the caller owns concurrency (the
    asyncio server runs it from one event loop).  Every ``try_admit`` that
    returns an admitted decision MUST be paired with exactly one
    ``release`` when the query reaches a terminal state.

    Example::

        controller = AdmissionController(AdmissionPolicy(max_active=2))
        controller.try_admit("a").admitted      # True
        controller.try_admit("b").admitted      # True
        controller.try_admit("c").admitted      # False (server full)
        controller.release("a")
        controller.try_admit("c").admitted      # True
    """

    def __init__(self, policy: AdmissionPolicy | None = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self._active_total = 0
        self._active_by_client: dict[str, int] = {}
        self.admitted_total = 0
        self.rejected_total = 0
        self.rejected_by_reason: dict[str, int] = {}

    @property
    def active(self) -> int:
        """Queries currently holding an admission slot."""
        return self._active_total

    def active_for(self, client: str) -> int:
        """Slots currently held by one client identity."""
        return self._active_by_client.get(client, 0)

    def try_admit(self, client: str) -> AdmissionDecision:
        """Grant a slot to ``client`` or explain the refusal."""
        policy = self.policy
        if (
            policy.max_active is not None
            and self._active_total >= policy.max_active
        ):
            return self._reject(
                f"server at capacity ({policy.max_active} active queries)",
                key="server_full",
            )
        if (
            policy.max_per_client is not None
            and self.active_for(client) >= policy.max_per_client
        ):
            return self._reject(
                f"client {client!r} at quota "
                f"({policy.max_per_client} concurrent queries)",
                key="client_quota",
            )
        self._active_total += 1
        self._active_by_client[client] = self.active_for(client) + 1
        self.admitted_total += 1
        return AdmissionDecision(admitted=True)

    def release(self, client: str) -> None:
        """Return the slot held by one of ``client``'s queries."""
        if self._active_total <= 0 or self.active_for(client) <= 0:
            raise ServeError(
                f"release without a matching admit for client {client!r}"
            )
        self._active_total -= 1
        remaining = self._active_by_client[client] - 1
        if remaining:
            self._active_by_client[client] = remaining
        else:
            del self._active_by_client[client]

    def _reject(self, reason: str, *, key: str) -> AdmissionDecision:
        self.rejected_total += 1
        self.rejected_by_reason[key] = self.rejected_by_reason.get(key, 0) + 1
        return AdmissionDecision(
            admitted=False,
            status=TOO_MANY_REQUESTS,
            reason=reason,
            retry_after=self.policy.retry_after_seconds,
        )

    def snapshot(self) -> dict:
        """Counters for the ``/stats`` endpoint."""
        return {
            "active": self._active_total,
            "active_clients": len(self._active_by_client),
            "admitted_total": self.admitted_total,
            "rejected_total": self.rejected_total,
            "rejected_by_reason": dict(self.rejected_by_reason),
        }


class DeadlineGuard:
    """Watches one admitted query's wall/vtime timeout.

    Built at admission time from the policy-clamped limits; the serving
    pump polls :meth:`expired` every scheduling round (cheap: two
    comparisons) and cancels the query through its scheduler handle when a
    limit is crossed.  Cancellation — not a budget stop — because a
    timeout is the *server* revoking service, and must free the admission
    slot even for a query paused under backpressure.

    For a *follow* query (``follow=True``) expiry instead closes the
    arrival window (:meth:`ScheduledQuery.close_ingest
    <repro.session.scheduler.ScheduledQuery.close_ingest>`): the timeout
    bounds how long the server keeps ingesting, but rows already absorbed
    are still fully processed and the query completes normally.
    """

    __slots__ = (
        "handle", "wall_limit", "vtime_limit", "follow", "_wall_start",
        "_ingest_closed",
    )

    def __init__(
        self,
        handle,
        *,
        wall_limit: float | None,
        vtime_limit: float | None,
        follow: bool = False,
    ) -> None:
        self.handle = handle
        self.wall_limit = wall_limit
        self.vtime_limit = vtime_limit
        self.follow = follow
        self._wall_start = time.perf_counter()
        self._ingest_closed = False

    def expired(self, now: float | None = None) -> str | None:
        """The timeout reason if a limit is crossed, else ``None``."""
        if self.wall_limit is not None:
            elapsed = (now or time.perf_counter()) - self._wall_start
            if elapsed >= self.wall_limit:
                return (
                    f"{TIMEOUT_REASON_PREFIX} wall limit "
                    f"({self.wall_limit:g}s) exceeded"
                )
        if (
            self.vtime_limit is not None
            and self.handle.clock.now() >= self.vtime_limit
        ):
            return (
                f"{TIMEOUT_REASON_PREFIX} vtime limit "
                f"({self.vtime_limit:g}) exceeded"
            )
        return None

    def enforce(self, now: float | None = None) -> bool:
        """Cancel (or, for follow queries, close) on a crossed limit."""
        reason = self.expired(now)
        if reason is None or self.handle.finished:
            return False
        if self.follow:
            # Close the arrival window once; the query then drains its
            # absorbed rows to natural completion instead of being killed.
            if self._ingest_closed:
                return False
            self._ingest_closed = True
            self.handle.close_ingest()
            return True
        self.handle.cancel(reason)
        return True
