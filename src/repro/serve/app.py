"""The asyncio streaming server edge: ``repro serve``.

One process, one event loop, one :class:`~repro.session.scheduler.
QueryScheduler` — and any number of concurrently streaming clients.  The
paper's contract (results become available the moment they are provably
final) reaches the network here: a client POSTs a query and receives its
result frames the instant the interleaved engine emits them.

Design, in one paragraph: the engine stays synchronous — the server never
moves kernel work off the event loop.  A single *pump* task calls
:meth:`~repro.session.scheduler.QueryScheduler.tick` in a loop, routing
each admitted query's new results into its connection's
:class:`~repro.serve.backpressure.OutboundChannel`; a per-connection
writer task drains that channel into the socket.  A slow client fills its
channel past the high-water mark, which pauses *that query's kernel* via
the scheduler — other queries keep streaming untouched, and nothing
buffers unboundedly.  Admission (:class:`~repro.serve.admission.
AdmissionController`) rejects work beyond the configured ceilings with
429s instead of queueing it; per-query deadline guards cancel overdue
queries through the scheduler, which frees their admission slots even
while paused.  A query whose kernel raises is retired ``failed`` and its
client gets an ``error`` frame plus a terminal ``complete`` frame — the
other connections never notice.

The HTTP surface is deliberately tiny (hand-rolled HTTP/1.1 over
``asyncio.start_server``; stdlib only, close-delimited streaming):

========================= ==========================================
``POST /query``           submit a query (JSON body); stream frames
``GET /query?sql=...``    the same, parameters in the query string
``GET /healthz``          liveness + active-query count
``GET /stats``            admission / scheduler / backpressure counters
``POST /shutdown``        graceful shutdown (drains active streams)
========================= ==========================================
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from dataclasses import asdict
from typing import Any, Mapping
from urllib.parse import parse_qsl

from repro.errors import ProtocolError, ReproError
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    DeadlineGuard,
)
from repro.serve.backpressure import BackpressureBridge, Watermarks
from repro.serve.protocol import (
    CONTENT_TYPES,
    FrameFactory,
    QueryRequest,
    encode_frame,
)
from repro.session.config import SchedulerConfig
from repro.session.service import Session
from repro.session.stream import FAILED

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    503: "Service Unavailable",
}

#: Upper bound on one request head (request line + headers) and body.
_MAX_HEAD_BYTES = 16 * 1024
_MAX_BODY_BYTES = 256 * 1024


class ServedQuery:
    """Per-connection serving state of one admitted query."""

    __slots__ = (
        "request", "handle", "client", "bridge", "frames", "guard",
        "sent", "last_progress_step",
    )

    def __init__(self, request, handle, client, bridge, frames, guard):
        self.request = request
        self.handle = handle
        self.client = client
        self.bridge = bridge
        self.frames = frames
        self.guard = guard
        #: Results already routed into the channel (index into handle.results).
        self.sent = 0
        self.last_progress_step = 0

    @property
    def channel(self):
        return self.bridge.channel

    def put(self, frame: Mapping[str, Any]) -> None:
        self.channel.put(encode_frame(frame, self.request.format))


class QueryServer:
    """Streaming HTTP edge over one session's query scheduler.

    Parameters
    ----------
    session:
        The :class:`~repro.session.service.Session` whose tables and
        algorithms the server exposes.
    host / port:
        Bind address; ``port=0`` picks a free port (read :attr:`port`
        after :meth:`start`).
    scheduler:
        :class:`~repro.session.config.SchedulerConfig` or preset name for
        the serving scheduler (default: the ``"serving"`` preset — fair
        share, vtime-capped bursts, starvation-bounded).
    admission:
        :class:`~repro.serve.admission.AdmissionPolicy` ceilings.
    watermarks:
        Per-connection backpressure :class:`~repro.serve.backpressure.
        Watermarks`.
    idle_poll_seconds:
        How often the idle pump re-checks deadlines when no query is
        runnable (all paused / none admitted).

    Example::

        server = QueryServer(session, port=0)
        await server.start()
        ...                      # POST http://127.0.0.1:{server.port}/query
        await server.stop()      # graceful: drains active streams
    """

    def __init__(
        self,
        session: Session,
        *,
        host: str = "127.0.0.1",
        port: int = 8484,
        scheduler: SchedulerConfig | str = "serving",
        admission: AdmissionPolicy | None = None,
        watermarks: Watermarks | None = None,
        idle_poll_seconds: float = 0.05,
    ) -> None:
        self.session = session
        self.host = host
        self.port = port
        self.admission = AdmissionController(admission)
        self.watermarks = watermarks or Watermarks()
        self.idle_poll_seconds = idle_poll_seconds
        self.scheduler = session.scheduler(scheduler)
        self._served: dict[int, ServedQuery] = {}
        self._server: asyncio.AbstractServer | None = None
        self._pump_task: asyncio.Task | None = None
        self._connections: set[asyncio.Task] = set()
        self._wake = asyncio.Event()
        self._shutdown = asyncio.Event()
        self._stopping = False
        self._stopped = False
        self.timed_out_total = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the scheduling pump."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.ensure_future(self._pump())

    async def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop serving; with ``drain`` (default), finish active streams.

        New queries are refused (503) the moment stopping begins.  Without
        ``drain`` — or when draining exceeds ``timeout`` — the remaining
        queries are cancelled through the scheduler, so every client still
        receives its terminal ``complete`` frame before the socket closes.
        """
        if self._stopped:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
        if not drain:
            self._cancel_all("server shutting down")
        self._wake.set()
        if self._pump_task is not None:
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._pump_task), timeout
                )
            except asyncio.TimeoutError:
                self._cancel_all("server shutdown drain timed out")
                self._wake.set()
                await self._pump_task
        if self._server is not None:
            await self._server.wait_closed()
        if self._connections:
            done, pending = await asyncio.wait(
                self._connections, timeout=5.0
            )
            for task in pending:
                task.cancel()
        self._stopped = True

    async def serve_until_shutdown(self) -> None:
        """Block until ``POST /shutdown`` (or :meth:`shutdown`), then drain."""
        await self._shutdown.wait()
        await self.stop(drain=True)

    def shutdown(self) -> None:
        """Request graceful shutdown (signal-handler and test hook)."""
        self._shutdown.set()

    def run(self) -> None:
        """Synchronous entry point: serve until shutdown (used by the CLI)."""
        asyncio.run(self._run_main())

    async def _run_main(self) -> None:
        await self.start()
        loop = asyncio.get_running_loop()
        try:
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(
                    NotImplementedError, RuntimeError, ValueError
                ):
                    loop.add_signal_handler(signum, self.shutdown)
        except ImportError:  # pragma: no cover - signal is stdlib
            pass
        print(f"repro serving on http://{self.host}:{self.port}", flush=True)
        await self.serve_until_shutdown()

    def _cancel_all(self, reason: str) -> None:
        for served in self._served.values():
            served.handle.cancel(reason)

    # ------------------------------------------------------------------
    # the pump: engine work interleaved with the event loop
    # ------------------------------------------------------------------
    async def _pump(self) -> None:
        """Advance the scheduler and route frames until stopped and drained."""
        while True:
            self._wake.clear()
            try:
                worked = bool(self.scheduler.tick())
            except Exception as exc:
                # A kernel raised mid-step: the scheduler retired the
                # owning query FAILED and stamped it with the exception,
                # and the sweep below turns that terminal state into
                # error/complete frames for its one client.  An exception
                # no served query owns is a scheduler/policy bug, not a
                # query failure — swallowing it would spin this loop hot
                # forever, so it propagates.
                owned = any(
                    served.handle.error is exc
                    for served in self._served.values()
                )
                if not owned:
                    raise
                worked = True
            now = time.perf_counter()
            for served in list(self._served.values()):
                if served.guard.enforce(now):
                    self.timed_out_total += 1
                self._route(served)
            self._sweep()
            if self._stopping and not self._served:
                return
            if worked:
                await asyncio.sleep(0)
            else:
                # Nothing runnable: every served query is paused (slow
                # client) or finished.  Wait for a submit/resume wake-up,
                # but re-check deadlines at the idle poll interval so a
                # paused query's timeout still fires.
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._wake.wait(), self.idle_poll_seconds
                    )

    def _route(self, served: ServedQuery) -> None:
        """Push a query's unsent results (and progress) into its channel.

        Reads the cumulative ``handle.results`` list rather than the tick's
        step reports, so results from a burst interrupted by a failure are
        never lost.
        """
        handle = served.handle
        results = handle.results
        while served.sent < len(results):
            result = results[served.sent]
            served.sent += 1
            served.put(served.frames.result(served.sent, result))
        every = served.request.progress_every
        if (
            every
            and not handle.finished
            and handle.steps - served.last_progress_step >= every
        ):
            served.last_progress_step = handle.steps
            served.put(
                served.frames.progress(
                    steps=handle.steps,
                    results=len(results),
                    vtime=handle.clock.now(),
                    state=handle.state,
                )
            )

    def _sweep(self) -> None:
        """Finalise terminal queries: last frames, slot release, cleanup."""
        for qid, served in list(self._served.items()):
            handle = served.handle
            if not handle.finished:
                continue
            self._route(served)
            if handle.state == FAILED:
                served.put(
                    served.frames.error(handle.stop_reason or "query failed")
                )
            stats = asdict(handle.stats())
            stats["steps"] = handle.steps
            served.put(
                served.frames.complete(
                    state=handle.state,
                    stop_reason=handle.stop_reason,
                    stats=stats,
                )
            )
            served.channel.close()
            self.admission.release(served.client)
            del self._served[qid]

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(ConnectionError):
                if writer.can_write_eof():
                    writer.write_eof()
                writer.close()
                await writer.wait_closed()

    async def _handle_request(self, reader, writer) -> None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.LimitOverrunError, asyncio.IncompleteReadError):
            self._respond(writer, 400, {"error": "malformed request head"})
            return
        if len(head) > _MAX_HEAD_BYTES:
            self._respond(writer, 400, {"error": "request head too large"})
            return
        try:
            request_line, *header_lines = head.decode("latin-1").split("\r\n")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            self._respond(writer, 400, {"error": "malformed request line"})
            return
        headers = {}
        for line in header_lines:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        path, _, query_string = target.partition("?")

        if path == "/healthz" and method == "GET":
            self._respond(
                writer, 200,
                {"status": "ok", "active": self.admission.active},
            )
        elif path == "/stats" and method == "GET":
            self._respond(writer, 200, self.stats())
        elif path == "/shutdown" and method == "POST":
            self._respond(writer, 200, {"status": "shutting down"})
            await self._flush_writer(writer)
            self.shutdown()
        elif path == "/query":
            params = await self._query_params(
                method, query_string, headers, reader, writer
            )
            if params is not None:
                await self._handle_query(params, writer)
        else:
            known = path in ("/healthz", "/stats", "/shutdown", "/query")
            self._respond(
                writer, 405 if known else 404,
                {"error": f"{method} {path} is not a server endpoint"},
            )

    async def _query_params(
        self, method, query_string, headers, reader, writer
    ) -> Mapping[str, Any] | None:
        """The request's raw parameter mapping, or None after an error reply."""
        if method == "GET":
            return dict(parse_qsl(query_string))
        if method != "POST":
            self._respond(
                writer, 405, {"error": "use GET or POST for /query"}
            )
            return None
        try:
            length = int(headers.get("content-length", ""))
        except ValueError:
            self._respond(
                writer, 400,
                {"error": "POST /query requires a Content-Length body"},
            )
            return None
        if length > _MAX_BODY_BYTES:
            self._respond(writer, 400, {"error": "request body too large"})
            return None
        body = await reader.readexactly(length)
        try:
            decoded = json.loads(body)
        except json.JSONDecodeError as exc:
            self._respond(
                writer, 400, {"error": f"request body is not JSON: {exc}"}
            )
            return None
        if not isinstance(decoded, dict):
            self._respond(
                writer, 400, {"error": "request body must be a JSON object"}
            )
            return None
        return decoded

    async def _handle_query(self, params, writer) -> None:
        try:
            request = QueryRequest.from_mapping(params)
        except ProtocolError as exc:
            self._respond(writer, 400, {"error": str(exc)})
            return
        if self._stopping:
            self._respond(
                writer, 503, {"error": "server is shutting down"}
            )
            return
        client = request.client or self._peer_name(writer)
        decision = self.admission.try_admit(client)
        if not decision.admitted:
            self._respond(
                writer, decision.status,
                {"error": decision.reason,
                 "retry_after": decision.retry_after},
                headers={"Retry-After": f"{decision.retry_after:g}"},
            )
            return
        try:
            handle = self.scheduler.submit(
                request.sql,
                algorithm=request.algorithm,
                config=request.engine_config(),
                budget=request.budget(),
                name=request.name,
            )
        except ReproError as exc:
            self.admission.release(client)
            self._respond(writer, 400, {"error": str(exc)})
            return
        bridge = BackpressureBridge(
            handle, self.watermarks, on_runnable=self._wake.set
        )
        served = ServedQuery(
            request=request,
            handle=handle,
            client=client,
            bridge=bridge,
            frames=FrameFactory(),
            guard=self._guard(handle, request),
        )
        served.put(
            served.frames.accepted(
                qid=handle.qid, name=handle.name, algorithm=request.algorithm
            )
        )
        self._served[handle.qid] = served
        self._wake.set()
        await self._stream(served, writer)

    def _guard(self, handle, request) -> DeadlineGuard:
        policy = self.admission.policy
        return DeadlineGuard(
            handle,
            wall_limit=policy.wall_limit(request.timeout_wall_seconds),
            vtime_limit=policy.vtime_limit(request.timeout_vtime),
            follow=request.follow,
        )

    async def _stream(self, served: ServedQuery, writer) -> None:
        """Write the response head, then drain the channel to the socket."""
        content_type = CONTENT_TYPES[served.request.format]
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: " + content_type.encode() + b"\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        try:
            while True:
                data = await served.channel.get()
                if data is None:
                    break
                writer.write(data)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            # The client went away (or the connection task was killed):
            # cancel through the scheduler so the admission slot frees at
            # the next decision — even if the query is paused right now.
            served.handle.cancel("client disconnected")
            served.channel.close()
            self._wake.set()
            raise

    @staticmethod
    def _peer_name(writer) -> str:
        peer = writer.get_extra_info("peername")
        return f"{peer[0]}:{peer[1]}" if peer else "unknown"

    def _respond(
        self,
        writer,
        status: int,
        payload: Mapping[str, Any],
        *,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, default=str).encode()
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write("\r\n".join(lines).encode() + b"\r\n\r\n" + body)

    @staticmethod
    async def _flush_writer(writer) -> None:
        with contextlib.suppress(ConnectionError):
            await writer.drain()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``/stats`` payload: admission, scheduler, backpressure."""
        channels = [s.channel for s in self._served.values()]
        return {
            "admission": self.admission.snapshot(),
            "timed_out_total": self.timed_out_total,
            "scheduler": {
                "policy": self.scheduler.config.policy,
                "live_queries": len(self.scheduler.live_queries),
                "paused_queries": sum(
                    1 for q in self.scheduler.live_queries if q.paused
                ),
                "global_vtime": self.scheduler.global_vtime,
            },
            "backpressure": {
                "streaming": len(channels),
                "buffered_bytes": sum(c.buffered_bytes for c in channels),
                "paused": sum(1 for c in channels if c.paused),
                "pauses_total": sum(c.pauses for c in channels),
                "resumes_total": sum(c.resumes for c in channels),
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryServer({self.host}:{self.port}, "
            f"active={self.admission.active}, stopping={self._stopping})"
        )
