"""Multi-way SkyMapJoin queries (three or more sources).

The paper's framework is defined over two sources, but its motivating
applications want more: the travel aggregator books flights *and* hotels
*and* activities; the supply chain couples suppliers, transporters and
warehouses.  This module extends the query model to a **chain of
equi-joins** over ``k >= 2`` sources and provides two evaluation routes:

* :meth:`BoundMultiwayQuery.evaluate_blocking` — the JF-SL analogue:
  materialise the chain join, map, skyline.  Simple, always applicable;
  the correctness oracle for the reduction below.
* :meth:`BoundMultiwayQuery.reduce_to_binary` — fold all but the last
  source into one *intermediate relation* (columns prefixed with their
  source alias), rewrite the mapping expressions against it, and hand the
  result to the binary ProgXe engine.  The reduction is exact — the
  intermediate relation enumerates precisely the chain-join prefixes — so
  every ProgXe guarantee (progressive safety, completeness) carries over
  to the multi-way query.

The fold direction is left-to-right (a left-deep plan); joins must form a
chain where each subsequent source joins against an already-folded one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.errors import BindingError, QueryError
from repro.query.expressions import AttrRef, rename_attributes
from repro.query.mapping import MappingFunction, MappingSet
from repro.query.smj import (
    BoundQuery,
    JoinCondition,
    PassThrough,
    SkyMapJoinQuery,
)
from repro.runtime.clock import VirtualClock
from repro.skyline.preferences import ParetoPreference
from repro.skyline.sfs import sfs_skyline_entries
from repro.storage.schema import Schema
from repro.storage.table import Table

#: Alias given to the folded intermediate relation.
MERGED_ALIAS = "_merged"


def chain_join_rows(
    tables: Mapping[str, Table],
    aliases: tuple[str, ...],
    joins: tuple["ChainJoin", ...],
    clock: VirtualClock,
) -> Iterator[dict[str, tuple]]:
    """Enumerate the chain join's matches as alias→row dicts.

    Left-to-right hash-join pipeline over the given prefix of the chain;
    used both by the blocking evaluator and by the binary-reduction fold.
    """
    first = aliases[0]
    partials: list[dict[str, tuple]] = [
        {first: row} for row in tables[first].rows
    ]
    for join in joins:
        right_table = tables[join.right_alias]
        left_schema_idx = tables[join.left_alias].schema.index(join.left_attr)
        right_idx = right_table.schema.index(join.right_attr)
        # Hash the attached side once, probe each partial.
        buckets: dict = {}
        for row in right_table.rows:
            clock.charge("join_build")
            buckets.setdefault(row[right_idx], []).append(row)
        extended = []
        for partial in partials:
            clock.charge("join_probe")
            key = partial[join.left_alias][left_schema_idx]
            for row in buckets.get(key, ()):
                clock.charge("join_result")
                nxt = dict(partial)
                nxt[join.right_alias] = row
                extended.append(nxt)
        partials = extended
        if not partials:
            return
    yield from partials


@dataclass(frozen=True)
class ChainJoin:
    """One equi-join link: ``left_alias.left_attr = right_alias.right_attr``.

    ``right_alias`` is the source being attached; ``left_alias`` must have
    been attached earlier in the chain (or be the first source).
    """

    left_alias: str
    left_attr: str
    right_alias: str
    right_attr: str


@dataclass
class MultiwayQuery:
    """A SkyMapJoin query over a chain of ``k >= 2`` sources."""

    aliases: tuple[str, ...]
    joins: tuple[ChainJoin, ...]
    mappings: MappingSet
    preference: ParetoPreference
    passthrough: tuple[PassThrough, ...] = ()

    def __post_init__(self) -> None:
        if len(self.aliases) < 2:
            raise QueryError("a multiway query needs at least two sources")
        if len(set(self.aliases)) != len(self.aliases):
            raise QueryError(f"duplicate aliases: {list(self.aliases)}")
        if len(self.joins) != len(self.aliases) - 1:
            raise QueryError(
                f"{len(self.aliases)} sources need {len(self.aliases) - 1} "
                f"chain joins, got {len(self.joins)}"
            )
        attached = {self.aliases[0]}
        for i, join in enumerate(self.joins):
            expected = self.aliases[i + 1]
            if join.right_alias != expected:
                raise QueryError(
                    f"join {i} must attach source {expected!r}, "
                    f"attaches {join.right_alias!r}"
                )
            if join.left_alias not in attached:
                raise QueryError(
                    f"join {i} references {join.left_alias!r} before it is "
                    f"attached; attached so far: {sorted(attached)}"
                )
            attached.add(join.right_alias)
        known = set(self.mappings.names)
        for p in self.preference:
            if p.attribute not in known:
                raise QueryError(
                    f"preference on {p.attribute!r} but no mapping defines it"
                )
        alias_set = set(self.aliases)
        for m in self.mappings:
            for a, _ in m.attributes():
                if a not in alias_set:
                    raise QueryError(f"mapping references unknown alias {a!r}")
        for pt in self.passthrough:
            if pt.alias not in alias_set:
                raise QueryError(f"select item references unknown alias {pt.alias!r}")

    def bind(self, tables: Mapping[str, Table]) -> "BoundMultiwayQuery":
        """Resolve against concrete tables keyed by alias."""
        missing = [a for a in self.aliases if a not in tables]
        if missing:
            raise BindingError(f"no tables bound for aliases {missing}")
        return BoundMultiwayQuery(self, {a: tables[a] for a in self.aliases})


class MultiwayResult:
    """One multi-way result: per-source rows plus the mapped point."""

    __slots__ = ("rows", "mapped", "vector", "outputs")

    def __init__(self, rows, mapped, vector, outputs) -> None:
        self.rows = rows  # dict alias -> row
        self.mapped = mapped
        self.vector = vector
        self.outputs = outputs

    def key(self) -> tuple:
        """Identity key across evaluation strategies."""
        return tuple(self.rows[a] for a in sorted(self.rows))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiwayResult({self.outputs})"


class BoundMultiwayQuery:
    """A multiway query resolved against concrete tables."""

    def __init__(self, query: MultiwayQuery, tables: dict[str, Table]) -> None:
        self.query = query
        self.tables = tables
        for alias, table in tables.items():
            if not table.rows:
                raise BindingError(f"table for alias {alias!r} is empty")

    # ------------------------------------------------------------------
    # blocking evaluation (the oracle)
    # ------------------------------------------------------------------
    def _chain_rows(
        self, clock: VirtualClock
    ) -> Iterator[dict[str, tuple]]:
        """Enumerate chain-join matches as alias→row dicts."""
        return chain_join_rows(
            self.tables, self.query.aliases, self.query.joins, clock
        )

    def _env_of(self, rows: dict[str, tuple]) -> dict[AttrRef, float]:
        env: dict[AttrRef, float] = {}
        for alias, row in rows.items():
            schema = self.tables[alias].schema
            for i, col in enumerate(schema.columns):
                env[(alias, col)] = row[i]
        return env

    def _make_result(self, rows: dict[str, tuple],
                     mapped: tuple[float, ...]) -> MultiwayResult:
        query = self.query
        signs = []
        for name in query.mappings.names:
            sign = 0
            for p in query.preference:
                if p.attribute == name:
                    sign = 1 if p.direction.value == "LOWEST" else -1
            signs.append(sign)
        vector = tuple(
            s * v for s, v in zip(signs, mapped) if s != 0
        )
        outputs = {}
        for pt in query.passthrough:
            schema = self.tables[pt.alias].schema
            outputs[pt.output_name] = rows[pt.alias][schema.index(pt.attribute)]
        for name, value in zip(query.mappings.names, mapped):
            outputs[name] = value
        return MultiwayResult(rows, mapped, vector, outputs)

    def evaluate_blocking(
        self, clock: VirtualClock | None = None
    ) -> list[MultiwayResult]:
        """JF-SL-style evaluation: full chain join, map, one skyline."""
        clock = clock or VirtualClock()
        candidates = []
        for rows in self._chain_rows(clock):
            env = self._env_of(rows)
            mapped = self.query.mappings.apply(env)
            clock.charge("map")
            result = self._make_result(rows, mapped)
            candidates.append((result.vector, result))
        survivors = sfs_skyline_entries(
            candidates, on_comparison=clock.charger("dominance_cmp")
        )
        return [r for _, r in survivors]

    # ------------------------------------------------------------------
    # reduction to the binary engine
    # ------------------------------------------------------------------
    def reduce_to_binary(
        self, clock: VirtualClock | None = None
    ) -> tuple[BoundQuery, Callable]:
        """Fold all sources but the last into one intermediate relation.

        Returns the equivalent binary :class:`BoundQuery` plus a converter
        turning the binary engine's :class:`ResultTuple` objects back into
        :class:`MultiwayResult` objects with full per-source provenance.
        """
        query = self.query
        clock = clock or VirtualClock()
        folded_aliases = list(query.aliases[:-1])
        last_alias = query.aliases[-1]
        last_join = query.joins[-1]

        # Materialise the chain join over the folded prefix.
        if len(folded_aliases) == 1:
            # Two sources total: already binary, no folding needed.
            merged_rows = [
                {folded_aliases[0]: row}
                for row in self.tables[folded_aliases[0]].rows
            ]
        else:
            merged_rows = list(
                chain_join_rows(
                    self.tables,
                    tuple(folded_aliases),
                    query.joins[:-1],
                    clock,
                )
            )
        if not merged_rows:
            raise BindingError("the folded join prefix is empty")

        # Build the intermediate relation: columns "<alias>.<col>".
        columns: list[str] = []
        col_origin: list[tuple[str, int]] = []
        for alias in folded_aliases:
            schema = self.tables[alias].schema
            for i, col in enumerate(schema.columns):
                columns.append(f"{alias}.{col}")
                col_origin.append((alias, i))
        merged_table = Table(
            MERGED_ALIAS,
            Schema(columns),
            (
                tuple(rows[a][i] for a, i in col_origin)
                for rows in merged_rows
            ),
        )

        rename: dict[AttrRef, AttrRef] = {}
        for alias in folded_aliases:
            for col in self.tables[alias].schema.columns:
                rename[(alias, col)] = (MERGED_ALIAS, f"{alias}.{col}")

        mappings = MappingSet(
            [
                MappingFunction(m.name, rename_attributes(m.expression, rename))
                for m in query.mappings
            ]
        )
        passthrough = tuple(
            PassThrough(MERGED_ALIAS, f"{pt.alias}.{pt.attribute}", pt.output_name)
            if pt.alias != last_alias
            else pt
            for pt in query.passthrough
        )
        binary = SkyMapJoinQuery(
            left_alias=MERGED_ALIAS,
            right_alias=last_alias,
            join=JoinCondition(
                f"{last_join.left_alias}.{last_join.left_attr}",
                last_join.right_attr,
            ),
            mappings=mappings,
            preference=query.preference,
            passthrough=passthrough,
        )
        bound = binary.bind(
            {MERGED_ALIAS: merged_table, last_alias: self.tables[last_alias]}
        )

        def convert(result) -> MultiwayResult:
            rows = {last_alias: result.right_row}
            for alias in folded_aliases:
                schema = self.tables[alias].schema
                start = columns.index(f"{alias}.{schema.columns[0]}")
                rows[alias] = tuple(
                    result.left_row[start + i] for i in range(len(schema))
                )
            return self._make_result(rows, result.mapped)

        return bound, convert

    def evaluate_progressive(
        self, clock: VirtualClock | None = None, **engine_kwargs
    ) -> Iterator[MultiwayResult]:
        """Progressive evaluation via the binary ProgXe engine.

        The folding prefix is a blocking join (charged to the clock); from
        there on every ProgXe guarantee applies — results stream out as
        soon as they are provably in the final multi-way skyline.
        """
        from repro.core.engine import ProgXeEngine

        clock = clock or VirtualClock()
        bound, convert = self.reduce_to_binary(clock)
        engine = ProgXeEngine(bound, clock, **engine_kwargs)
        for result in engine.run():
            yield convert(result)
