"""Arithmetic expression AST over attributes of two relations.

Mapping functions (paper §II-B, ``f_j : Dom(B_j) -> Dom(x)``) are arbitrary
arithmetic expressions over attributes of the joined tuple pair, e.g.
``2 * R.manTime + T.shipTime``.  This module provides:

* point evaluation (per join result, the "Map" operator µ),
* **interval evaluation** (per partition pair, the look-ahead phase),
* **monotonicity analysis** per source attribute, which powers the skyline
  partial push-through principle: if a mapping is monotonically increasing
  in ``R.a`` and the output is minimised, then lower ``R.a`` is locally
  preferable — the basis for safe source-level pruning,
* closure compilation into plain Python callables for the tuple-level hot
  path.

Environments map ``(alias, attribute)`` pairs to values (or intervals).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import QueryError
from repro.query.intervals import Interval

AttrRef = tuple[str, str]
Env = Mapping[AttrRef, float]
IntervalEnv = Mapping[AttrRef, Interval]

INCREASING = 1
DECREASING = -1
MIXED = None  # sentinel: monotonicity unknown / non-monotone


class Expression:
    """Base class for expression nodes."""

    def evaluate(self, env: Env) -> float:
        """Point evaluation under ``env``."""
        raise NotImplementedError

    def evaluate_interval(self, env: IntervalEnv) -> Interval:
        """Interval evaluation: sound over-approximation of the range."""
        raise NotImplementedError

    def attributes(self) -> frozenset[AttrRef]:
        """All ``(alias, attribute)`` references in the expression."""
        raise NotImplementedError

    def monotonicity(self) -> dict[AttrRef, int | None]:
        """Per-attribute monotonicity sign.

        ``+1`` = non-decreasing, ``-1`` = non-increasing, ``None`` = mixed or
        unknown.  Attributes absent from the map do not appear in the
        expression.
        """
        raise NotImplementedError

    def constant_value(self) -> float | None:
        """The expression's value if attribute-free, else ``None``."""
        if self.attributes():
            return None
        return self.evaluate({})

    def compile(
        self,
        left_alias: str,
        right_alias: str,
        left_index: Mapping[str, int],
        right_index: Mapping[str, int],
    ) -> Callable[[tuple, tuple], float]:
        """Compile to a closure over a ``(left_row, right_row)`` pair."""
        raise NotImplementedError

    # Operator sugar so tests and callers can compose programmatically.
    def __add__(self, other: "Expression | float") -> "Expression":
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other: float) -> "Expression":
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other: "Expression | float") -> "Expression":
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other: float) -> "Expression":
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other: "Expression | float") -> "Expression":
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other: float) -> "Expression":
        return BinOp("*", _wrap(other), self)

    def __truediv__(self, other: "Expression | float") -> "Expression":
        return BinOp("/", self, _wrap(other))

    def __rtruediv__(self, other: float) -> "Expression":
        return BinOp("/", _wrap(other), self)

    def __neg__(self) -> "Expression":
        return Neg(self)


def _wrap(value: "Expression | float") -> Expression:
    if isinstance(value, Expression):
        return value
    return Const(float(value))


def rename_attributes(
    expr: Expression, mapping: Mapping[AttrRef, AttrRef]
) -> Expression:
    """Rebuild ``expr`` with attribute references renamed per ``mapping``.

    References absent from the mapping are kept unchanged.  Used by the
    multi-way query reduction, which folds several sources into one
    intermediate relation and must repoint mapping expressions at it.
    """
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Attr):
        target = mapping.get(expr.ref)
        if target is None:
            return expr
        return Attr(target[0], target[1])
    if isinstance(expr, Neg):
        return Neg(rename_attributes(expr.operand, mapping))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            rename_attributes(expr.left, mapping),
            rename_attributes(expr.right, mapping),
        )
    raise QueryError(f"cannot rename in expression node {type(expr).__name__}")


class Const(Expression):
    """A numeric literal."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def evaluate(self, env: Env) -> float:
        return self.value

    def evaluate_interval(self, env: IntervalEnv) -> Interval:
        return Interval.point(self.value)

    def attributes(self) -> frozenset[AttrRef]:
        return frozenset()

    def monotonicity(self) -> dict[AttrRef, int | None]:
        return {}

    def compile(self, left_alias, right_alias, left_index, right_index):
        v = self.value
        return lambda lrow, rrow: v

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:g}"


class Attr(Expression):
    """An attribute reference ``alias.name``."""

    __slots__ = ("alias", "name")

    def __init__(self, alias: str, name: str) -> None:
        self.alias = alias
        self.name = name

    @property
    def ref(self) -> AttrRef:
        return (self.alias, self.name)

    def evaluate(self, env: Env) -> float:
        try:
            return env[self.ref]
        except KeyError:
            raise QueryError(f"attribute {self.alias}.{self.name} not bound") from None

    def evaluate_interval(self, env: IntervalEnv) -> Interval:
        try:
            return env[self.ref]
        except KeyError:
            raise QueryError(f"attribute {self.alias}.{self.name} not bound") from None

    def attributes(self) -> frozenset[AttrRef]:
        return frozenset({self.ref})

    def monotonicity(self) -> dict[AttrRef, int | None]:
        return {self.ref: INCREASING}

    def compile(self, left_alias, right_alias, left_index, right_index):
        if self.alias == left_alias:
            i = left_index[self.name]
            return lambda lrow, rrow: lrow[i]
        if self.alias == right_alias:
            i = right_index[self.name]
            return lambda lrow, rrow: rrow[i]
        raise QueryError(
            f"attribute alias {self.alias!r} is neither {left_alias!r} nor {right_alias!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.alias}.{self.name}"


class Neg(Expression):
    """Unary negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def evaluate(self, env: Env) -> float:
        return -self.operand.evaluate(env)

    def evaluate_interval(self, env: IntervalEnv) -> Interval:
        return -self.operand.evaluate_interval(env)

    def attributes(self) -> frozenset[AttrRef]:
        return self.operand.attributes()

    def monotonicity(self) -> dict[AttrRef, int | None]:
        return {
            ref: (None if sign is None else -sign)
            for ref, sign in self.operand.monotonicity().items()
        }

    def compile(self, left_alias, right_alias, left_index, right_index):
        f = self.operand.compile(left_alias, right_alias, left_index, right_index)
        return lambda lrow, rrow: -f(lrow, rrow)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"-({self.operand!r})"


def _combine_additive(
    a: dict[AttrRef, int | None], b: dict[AttrRef, int | None]
) -> dict[AttrRef, int | None]:
    out = dict(a)
    for ref, sign in b.items():
        if ref in out:
            out[ref] = sign if out[ref] == sign else None
        else:
            out[ref] = sign
    return out


class BinOp(Expression):
    """A binary arithmetic operation ``+ - * /``."""

    __slots__ = ("op", "left", "right")

    _OPS: dict[str, Callable[[float, float], float]] = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
    }

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in self._OPS:
            raise QueryError(f"unsupported operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Env) -> float:
        return self._OPS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def evaluate_interval(self, env: IntervalEnv) -> Interval:
        li = self.left.evaluate_interval(env)
        ri = self.right.evaluate_interval(env)
        if self.op == "+":
            return li + ri
        if self.op == "-":
            return li - ri
        if self.op == "*":
            return li * ri
        return li / ri

    def attributes(self) -> frozenset[AttrRef]:
        return self.left.attributes() | self.right.attributes()

    def monotonicity(self) -> dict[AttrRef, int | None]:
        lm = self.left.monotonicity()
        rm = self.right.monotonicity()
        if self.op == "+":
            return _combine_additive(lm, rm)
        if self.op == "-":
            flipped = {r: (None if s is None else -s) for r, s in rm.items()}
            return _combine_additive(lm, flipped)
        if self.op == "*":
            lc = self.left.constant_value()
            rc = self.right.constant_value()
            if lc is not None and rc is not None:
                return {}
            if rc is not None:
                if rc > 0:
                    return dict(lm)
                if rc < 0:
                    return {r: (None if s is None else -s) for r, s in lm.items()}
                return {}  # * 0: the expression no longer depends on the attrs
            if lc is not None:
                if lc > 0:
                    return dict(rm)
                if lc < 0:
                    return {r: (None if s is None else -s) for r, s in rm.items()}
                return {}
            # attribute * attribute: give up on monotonicity
            return {r: None for r in lm.keys() | rm.keys()}
        # division
        rc = self.right.constant_value()
        if rc is not None and rc != 0:
            if rc > 0:
                return dict(lm)
            return {r: (None if s is None else -s) for r, s in lm.items()}
        # constant / expr or expr / expr: sign depends on runtime domain
        return {r: None for r in lm.keys() | rm.keys()}

    def compile(self, left_alias, right_alias, left_index, right_index):
        f = self.left.compile(left_alias, right_alias, left_index, right_index)
        g = self.right.compile(left_alias, right_alias, left_index, right_index)
        op = self.op
        if op == "+":
            return lambda lrow, rrow: f(lrow, rrow) + g(lrow, rrow)
        if op == "-":
            return lambda lrow, rrow: f(lrow, rrow) - g(lrow, rrow)
        if op == "*":
            return lambda lrow, rrow: f(lrow, rrow) * g(lrow, rrow)
        return lambda lrow, rrow: f(lrow, rrow) / g(lrow, rrow)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} {self.op} {self.right!r})"
