"""The SkyMapJoin (SMJ) query model (paper §I, §II).

An SMJ query joins two relations, maps joined pairs through user-defined
mapping functions into an output space, and returns the skyline of the
mapped results under a Pareto preference:

    S_P ( µ[F, X] ( R ⋈_θ T ) )

:class:`SkyMapJoinQuery` is the logical query; :meth:`SkyMapJoinQuery.bind`
resolves it against concrete tables (validating schemas, applying local
filters once) and produces a :class:`BoundQuery` — the execution-ready form
every algorithm in the library consumes.  :class:`ResultTuple` is the common
output object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import BindingError, QueryError
from repro.query.expressions import AttrRef
from repro.query.intervals import Interval
from repro.query.mapping import MappingSet
from repro.skyline.preferences import Direction, ParetoPreference
from repro.storage.sources.base import DataSource
from repro.storage.sources.filtered import FilteredSource, conditions_fingerprint
from repro.storage.sources.memory import InMemorySource
from repro.storage.table import Row, Table  # noqa: F401  (re-export compat)

_FILTER_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "in": lambda a, b: a in b,  # alias.attr IN (v1, v2, ...)
    "contains": lambda a, b: b in a,  # literal IN alias.attr (collection column)
}


def _is_empty(source: DataSource) -> bool:
    """Whether a source has no rows, without a full counting scan.

    ``len()`` on a filtered view of a larger-than-RAM backend counts by
    scanning everything; the bind-time emptiness check only needs the
    first row, so stream and stop.
    """
    if isinstance(source, InMemorySource):
        return not source.rows
    for _ in source.iter_rows():
        return False
    return True


@dataclass(frozen=True)
class JoinCondition:
    """Equi-join ``left_alias.left_attr = right_alias.right_attr``."""

    left_attr: str
    right_attr: str


@dataclass(frozen=True)
class FilterCondition:
    """A local (single-source) filter, e.g. ``R.manCap >= 100000``."""

    alias: str
    attribute: str
    op: str
    literal: Any

    def __post_init__(self) -> None:
        if self.op not in _FILTER_OPS:
            raise QueryError(
                f"unsupported filter operator {self.op!r}; "
                f"supported: {sorted(_FILTER_OPS)}"
            )

    def matches(self, value: Any) -> bool:
        """Apply the filter to one attribute value."""
        return _FILTER_OPS[self.op](value, self.literal)


@dataclass(frozen=True)
class PassThrough:
    """A select-list item carried through unchanged, e.g. ``R.id``."""

    alias: str
    attribute: str
    output_name: str


@dataclass(eq=False, repr=False, slots=True)
class ResultTuple:
    """One SMJ result: the joined pair plus its mapped output point.

    ``vector`` is the *normalised* (minimisation-space) comparison vector;
    ``mapped`` holds the raw mapped values in query orientation.

    A plain slots dataclass, **picklable by contract** (the step-payload
    protocol of :class:`~repro.core.kernel.StepReport` and the sharded
    worker protocol both ship results across process boundaries).
    ``eq=False`` deliberately keeps identity-based equality and hashing:
    result bookkeeping throughout the library keys on the *object* (two
    distinct join results may carry equal rows and vectors).
    """

    left_row: Row
    right_row: Row
    mapped: tuple[float, ...]
    vector: tuple[float, ...]
    outputs: dict[str, Any]

    def key(self) -> tuple:
        """Identity key for cross-algorithm result-set comparison."""
        return (self.left_row, self.right_row)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultTuple({self.outputs})"


@dataclass
class SkyMapJoinQuery:
    """Logical SMJ query: join + filters + mappings + Pareto preference."""

    left_alias: str
    right_alias: str
    join: JoinCondition
    mappings: MappingSet
    preference: ParetoPreference
    filters: tuple[FilterCondition, ...] = ()
    passthrough: tuple[PassThrough, ...] = ()
    table_names: tuple[tuple[str, str], ...] = ()  # (alias, table name) from FROM

    def __post_init__(self) -> None:
        if self.left_alias == self.right_alias:
            raise QueryError("left and right aliases must differ")
        known = set(self.mappings.names)
        for p in self.preference:
            if p.attribute not in known:
                raise QueryError(
                    f"preference on {p.attribute!r} but no mapping defines it; "
                    f"mappings: {sorted(known)}"
                )
        aliases = {self.left_alias, self.right_alias}
        for f in self.filters:
            if f.alias not in aliases:
                raise QueryError(f"filter references unknown alias {f.alias!r}")
        for pt in self.passthrough:
            if pt.alias not in aliases:
                raise QueryError(f"select item references unknown alias {pt.alias!r}")
        for a, name in frozenset().union(
            *(m.attributes() for m in self.mappings)
        ):
            if a not in aliases:
                raise QueryError(f"mapping references unknown alias {a!r}")

    def bind(self, tables: Mapping[str, DataSource]) -> "BoundQuery":
        """Resolve against concrete data sources keyed by *alias*."""
        try:
            left = tables[self.left_alias]
            right = tables[self.right_alias]
        except KeyError as exc:
            raise BindingError(
                f"no table bound for alias {exc}; provided: {sorted(tables)}"
            ) from None
        return BoundQuery(self, left, right)

    def bind_by_table_name(self, tables: Mapping[str, DataSource]) -> "BoundQuery":
        """Resolve against concrete sources keyed by *table name* (FROM clause).

        Only available for queries built by the parser (which records the
        FROM-clause table names); programmatically built queries should use
        :meth:`bind`.
        """
        if not self.table_names:
            raise BindingError(
                "query has no FROM-clause table names; use bind() with aliases"
            )
        names = dict(self.table_names)
        by_alias: dict[str, DataSource] = {}
        for alias in (self.left_alias, self.right_alias):
            table_name = names[alias]
            try:
                by_alias[alias] = tables[table_name]
            except KeyError:
                raise BindingError(
                    f"no table named {table_name!r} provided for alias {alias!r}; "
                    f"provided: {sorted(tables)}"
                ) from None
        return self.bind(by_alias)


class BoundQuery:
    """An SMJ query resolved against concrete data sources.

    Exposes everything the engines need pre-computed: filtered sources,
    join key positions, mapped-attribute positions, a compiled mapping
    closure and preference normalisation.  Either side may be *any*
    :class:`~repro.storage.sources.base.DataSource` — an in-memory
    :class:`~repro.storage.table.Table`, an mmap-backed columnar file, or
    a SQLite relation; local filters are applied eagerly for in-memory
    sources, pushed down (``WHERE``) for sources that support it, and
    wrapped as a streaming filter view otherwise.
    """

    def __init__(
        self,
        query: SkyMapJoinQuery,
        left: DataSource,
        right: DataSource,
        *,
        filter_strategy: str = "auto",
    ) -> None:
        if filter_strategy not in ("auto", "push", "stream"):
            raise BindingError(
                f"filter_strategy must be 'auto', 'push' or 'stream', "
                f"got {filter_strategy!r}"
            )
        self.query = query
        self.left_alias = query.left_alias
        self.right_alias = query.right_alias
        #: The *unfiltered* sources the query was bound against — what the
        #: cost-based planner collects statistics over (selectivity is an
        #: estimate precisely because filtering happens at bind time).
        self.left_base = left
        self.right_base = right
        self.filter_strategy = filter_strategy

        self.left_table = self._apply_filters(
            left, query.left_alias, query, filter_strategy
        )
        self.right_table = self._apply_filters(
            right, query.right_alias, query, filter_strategy
        )
        if _is_empty(self.left_table):
            raise BindingError(
                f"table for alias {query.left_alias!r} has no rows after filters"
            )
        if _is_empty(self.right_table):
            raise BindingError(
                f"table for alias {query.right_alias!r} has no rows after filters"
            )

        self.left_join_index = self.left_table.schema.index(query.join.left_attr)
        self.right_join_index = self.right_table.schema.index(query.join.right_attr)

        self.left_map_attrs = query.mappings.source_attributes(query.left_alias)
        self.right_map_attrs = query.mappings.source_attributes(query.right_alias)
        self.left_map_indices = self.left_table.schema.indices(self.left_map_attrs)
        self.right_map_indices = self.right_table.schema.indices(self.right_map_attrs)

        left_index = {c: i for i, c in enumerate(self.left_table.schema.columns)}
        right_index = {c: i for i, c in enumerate(self.right_table.schema.columns)}
        self._map_fn = query.mappings.compile(
            query.left_alias, query.right_alias, left_index, right_index
        )

        # Preference sign per output dimension, in mapping order: +1 when the
        # dimension participates and is minimised, -1 when maximised, 0 when
        # the mapping output is not a skyline dimension.
        self.dimension_signs: tuple[int, ...] = tuple(
            self._dim_sign(name) for name in query.mappings.names
        )
        self.skyline_dims: tuple[int, ...] = tuple(
            i for i, s in enumerate(self.dimension_signs) if s != 0
        )
        if not self.skyline_dims:
            raise BindingError("no mapping output participates in the preference")

        self._passthrough_specs = [
            (pt.output_name,
             0 if pt.alias == query.left_alias else 1,
             (self.left_table if pt.alias == query.left_alias
              else self.right_table).schema.index(pt.attribute))
            for pt in query.passthrough
        ]

    def with_filter_strategy(self, strategy: str) -> "BoundQuery":
        """Re-bind with a different filter execution strategy.

        ``"push"`` sends local conditions to backends that support
        predicate push-down (SQLite ``WHERE``); ``"stream"`` forces the
        batch-scan filter view instead; ``"auto"`` (the bind-time default)
        pushes whenever the backend can.  Both strategies scan in the same
        (rowid) order, so the result stream is identical — only where the
        filtering work happens moves.  A no-op returning ``self`` when the
        strategy already matches (the common planner case).
        """
        if strategy == self.filter_strategy:
            return self
        return BoundQuery(
            self.query, self.left_base, self.right_base,
            filter_strategy=strategy,
        )

    @staticmethod
    def _apply_filters(
        source: DataSource,
        alias: str,
        query: SkyMapJoinQuery,
        strategy: str = "auto",
    ) -> DataSource:
        conds = [f for f in query.filters if f.alias == alias]
        if not conds:
            return source
        if isinstance(source, InMemorySource):
            # Rows are resident anyway: filter eagerly (historical
            # behaviour, whatever the strategy).  The result adopts a
            # structural cache identity derived from the base table +
            # conditions, so re-binding the same filtered query shares
            # cached partitionings instead of minting an unreachable fresh
            # uid per bind.
            idx_conds = [(source.schema.index(f.attribute), f) for f in conds]

            def keep(row: Row) -> bool:
                return all(f.matches(row[i]) for i, f in idx_conds)

            return source.filter(keep).with_derived_identity(
                source, conditions_fingerprint(conds)
            )
        push = getattr(source, "apply_filters", None)
        if push is not None and strategy != "stream":
            # Predicate push-down (SQLite WHERE); the source wraps whatever
            # it cannot express in a residual filter view itself.
            return push(conds)
        return FilteredSource(source, conds)

    @property
    def left_source(self) -> DataSource:
        """The (filtered) left data source — protocol-era name for
        :attr:`left_table`, which may be any backend."""
        return self.left_table

    @property
    def right_source(self) -> DataSource:
        """The (filtered) right data source (see :attr:`left_source`)."""
        return self.right_table

    def _dim_sign(self, mapping_name: str) -> int:
        for p in self.query.preference:
            if p.attribute == mapping_name:
                return 1 if p.direction is Direction.LOWEST else -1
        return 0

    # ------------------------------------------------------------------
    # hot-path evaluation
    # ------------------------------------------------------------------
    def map_pair(self, lrow: Row, rrow: Row) -> tuple[float, ...]:
        """Raw mapped values for one joined pair (query orientation)."""
        return self._map_fn(lrow, rrow)

    def vector_of(self, mapped: tuple[float, ...]) -> tuple[float, ...]:
        """Normalised minimisation vector over the skyline dimensions."""
        signs = self.dimension_signs
        return tuple(
            signs[i] * mapped[i] for i in self.skyline_dims
        )

    def make_result(self, lrow: Row, rrow: Row,
                    mapped: tuple[float, ...] | None = None) -> ResultTuple:
        """Build the user-facing :class:`ResultTuple` for a joined pair."""
        if mapped is None:
            mapped = self.map_pair(lrow, rrow)
        outputs: dict[str, Any] = {}
        for name, side, idx in self._passthrough_specs:
            outputs[name] = (lrow if side == 0 else rrow)[idx]
        for name, value in zip(self.query.mappings.names, mapped):
            outputs[name] = value
        return ResultTuple(lrow, rrow, mapped, self.vector_of(mapped), outputs)

    # ------------------------------------------------------------------
    # batched (columnar) evaluation
    # ------------------------------------------------------------------
    def map_rows_batch(self, lrows: Sequence[Row], rrows: Sequence[Row]):
        """Columnar Map: mapped values for a chunk of joined pairs.

        ``lrows[i]`` joins with ``rrows[i]``; returns an ``(n, k)`` float64
        matrix whose rows are what :meth:`map_pair` returns per pair.  The
        compiled mapping closures are pure arithmetic over indexable rows,
        so feeding them :class:`~repro.storage.column_batch.ColumnBatch`
        pseudo-rows evaluates every mapping over the whole chunk in one
        vectorized pass.
        """
        import numpy as np

        from repro.storage.column_batch import ColumnBatch

        n = len(lrows)
        lbatch = ColumnBatch(
            lrows, len(self.left_table.schema.columns), self.left_map_indices
        )
        rbatch = ColumnBatch(
            rrows, len(self.right_table.schema.columns), self.right_map_indices
        )
        raw = self._map_fn(lbatch, rbatch)
        cols = []
        for c in raw:
            arr = np.asarray(c, dtype=float)
            if arr.ndim == 0:  # constant-valued mapping dimension
                arr = np.full(n, float(arr))
            cols.append(arr)
        return np.column_stack(cols)

    def vectors_of_batch(self, mapped):
        """Batched :meth:`vector_of`: ``(n, k)`` mapped → ``(n, d)`` vectors."""
        import numpy as np

        dims = list(self.skyline_dims)
        signs = np.asarray(
            [self.dimension_signs[i] for i in dims], dtype=float
        )
        return np.asarray(mapped, dtype=float)[:, dims] * signs

    # ------------------------------------------------------------------
    # look-ahead support
    # ------------------------------------------------------------------
    def interval_env(
        self,
        left_bounds: Mapping[str, tuple[float, float]],
        right_bounds: Mapping[str, tuple[float, float]],
    ) -> dict[AttrRef, Interval]:
        """Build an interval environment from per-source attribute boxes."""
        env: dict[AttrRef, Interval] = {}
        for attr, (lo, hi) in left_bounds.items():
            env[(self.left_alias, attr)] = Interval(lo, hi)
        for attr, (lo, hi) in right_bounds.items():
            env[(self.right_alias, attr)] = Interval(lo, hi)
        return env

    def region_box(
        self,
        left_bounds: Mapping[str, tuple[float, float]],
        right_bounds: Mapping[str, tuple[float, float]],
    ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Normalised output-space box for a pair of input partition boxes.

        Applies the mapping functions over intervals, keeps only skyline
        dimensions and converts to minimisation space (negating maximised
        dimensions flips their interval endpoints).
        """
        env = self.interval_env(left_bounds, right_bounds)
        lows, highs = self.query.mappings.apply_intervals(env)
        lo_out = []
        hi_out = []
        for i in self.skyline_dims:
            s = self.dimension_signs[i]
            if s > 0:
                lo_out.append(lows[i])
                hi_out.append(highs[i])
            else:
                lo_out.append(-highs[i])
                hi_out.append(-lows[i])
        return tuple(lo_out), tuple(hi_out)

    @property
    def skyline_dimension_count(self) -> int:
        """Number of skyline dimensions ``d``."""
        return len(self.skyline_dims)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BoundQuery({self.left_alias}⋈{self.right_alias}, "
            f"{len(self.left_table)}x{len(self.right_table)} rows, "
            f"d={self.skyline_dimension_count})"
        )
