"""Query substrate: expressions, intervals, mappings, the SMJ model and parser."""

from repro.query.expressions import Attr, BinOp, Const, Expression, Neg
from repro.query.intervals import Interval
from repro.query.mapping import MappingFunction, MappingSet
from repro.query.multiway import (
    BoundMultiwayQuery,
    ChainJoin,
    MultiwayQuery,
    MultiwayResult,
)
from repro.query.parser import (
    parse_condition,
    parse_expression,
    parse_preference,
    parse_query,
)
from repro.query.render import render_query
from repro.query.smj import (
    BoundQuery,
    FilterCondition,
    JoinCondition,
    PassThrough,
    ResultTuple,
    SkyMapJoinQuery,
)

__all__ = [
    "Attr",
    "BinOp",
    "BoundMultiwayQuery",
    "BoundQuery",
    "ChainJoin",
    "Const",
    "MultiwayQuery",
    "MultiwayResult",
    "render_query",
    "Expression",
    "FilterCondition",
    "Interval",
    "JoinCondition",
    "MappingFunction",
    "MappingSet",
    "Neg",
    "ParseError",
    "PassThrough",
    "ResultTuple",
    "SkyMapJoinQuery",
    "parse_condition",
    "parse_expression",
    "parse_preference",
    "parse_query",
]

from repro.errors import ParseError  # noqa: E402  (re-export for convenience)
