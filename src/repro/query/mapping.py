"""The Map operator µ[F, X] (paper §II-B).

A :class:`MappingFunction` is one named output dimension ``x_j = f_j(B_j)``;
a :class:`MappingSet` is the full ``F`` that transforms a d-dimensional
joined tuple into the k-dimensional output object the skyline runs over.

Beyond point evaluation, the set supports interval evaluation (for the
output-space look-ahead) and *derived source preference* analysis (for the
skyline partial push-through used by ProgXe+/JF-SL+/SSMJ).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.errors import QueryError
from repro.query.expressions import AttrRef, Expression
from repro.query.intervals import Interval
from repro.skyline.preferences import Direction, ParetoPreference, Preference


class MappingFunction:
    """One output dimension: a name plus the expression computing it."""

    __slots__ = ("name", "expression")

    def __init__(self, name: str, expression: Expression) -> None:
        if not name:
            raise QueryError("mapping functions need a non-empty name")
        self.name = name
        self.expression = expression

    def attributes(self) -> frozenset[AttrRef]:
        """Source attributes referenced by this mapping."""
        return self.expression.attributes()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MappingFunction({self.name} = {self.expression!r})"


class MappingSet:
    """The ordered set ``F = {f_1 .. f_k}`` of mapping functions."""

    __slots__ = ("functions", "_by_name")

    def __init__(self, functions: Sequence[MappingFunction]) -> None:
        funcs = tuple(functions)
        if not funcs:
            raise QueryError("a SkyMapJoin query needs at least one mapping function")
        names = [f.name for f in funcs]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate mapping names: {names}")
        self.functions = funcs
        self._by_name = {f.name: f for f in funcs}

    @property
    def names(self) -> tuple[str, ...]:
        """Output dimension names in order."""
        return tuple(f.name for f in self.functions)

    @property
    def dimensions(self) -> int:
        """Number of output dimensions ``k``."""
        return len(self.functions)

    def __getitem__(self, name: str) -> MappingFunction:
        try:
            return self._by_name[name]
        except KeyError:
            raise QueryError(
                f"no mapping named {name!r}; defined: {list(self.names)}"
            ) from None

    def __iter__(self):
        return iter(self.functions)

    def __len__(self) -> int:
        return len(self.functions)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def apply(self, env: Mapping[AttrRef, float]) -> tuple[float, ...]:
        """Point evaluation of all mappings under ``env``."""
        return tuple(f.expression.evaluate(env) for f in self.functions)

    def apply_intervals(
        self, env: Mapping[AttrRef, Interval]
    ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Interval evaluation: the output-region box ``(lower, upper)``."""
        lows = []
        highs = []
        for f in self.functions:
            iv = f.expression.evaluate_interval(env)
            lows.append(iv.lo)
            highs.append(iv.hi)
        return tuple(lows), tuple(highs)

    def compile(
        self,
        left_alias: str,
        right_alias: str,
        left_index: Mapping[str, int],
        right_index: Mapping[str, int],
    ) -> Callable[[tuple, tuple], tuple[float, ...]]:
        """Compile all mappings into one ``(lrow, rrow) -> vector`` closure."""
        fns = [
            f.expression.compile(left_alias, right_alias, left_index, right_index)
            for f in self.functions
        ]
        def mapped(lrow: tuple, rrow: tuple) -> tuple[float, ...]:
            return tuple(fn(lrow, rrow) for fn in fns)
        return mapped

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def source_attributes(self, alias: str) -> tuple[str, ...]:
        """Attributes of ``alias`` referenced by any mapping (sorted)."""
        attrs = set()
        for f in self.functions:
            for a, name in f.attributes():
                if a == alias:
                    attrs.add(name)
        return tuple(sorted(attrs))

    def derived_source_preference(
        self, alias: str, preference: ParetoPreference
    ) -> ParetoPreference | None:
        """Derive a per-source preference for skyline partial push-through.

        For each attribute of ``alias`` used by the mappings, combine the
        mapping's monotonicity with the output direction.  Minimising an
        output that increases in ``R.a`` means lower ``R.a`` is better;
        flipped for decreasing mappings or maximised outputs.  If any
        attribute receives conflicting directions across mappings — or a
        mapping is non-monotone in it — push-through is unsafe for this
        source and ``None`` is returned.
        """
        directions: dict[str, Direction] = {}
        for f in self.functions:
            pref_dir = None
            for p in preference:
                if p.attribute == f.name:
                    pref_dir = p.direction
                    break
            if pref_dir is None:
                # Output not part of the skyline — it constrains nothing.
                continue
            mono = f.expression.monotonicity()
            for (a, name), sign in mono.items():
                if a != alias:
                    continue
                if sign is None:
                    return None
                want = pref_dir if sign > 0 else pref_dir.flip()
                if name in directions and directions[name] is not want:
                    return None
                directions[name] = want
        if not directions:
            return None
        return ParetoPreference(
            Preference(name, d) for name, d in sorted(directions.items())
        )
