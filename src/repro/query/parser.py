"""Parser for SkyMapJoin queries in the paper's surface syntax.

The paper writes queries like Q1:

    SELECT R.id, T.id,
           (R.uPrice + T.uShipCost) AS tCost,
           (2 * R.manTime + T.shipTime) AS delay
    FROM Suppliers R, Transporters T
    WHERE R.country = T.country AND
          'P1' IN R.suppliedParts AND R.manCap >= 100K
    PREFERRING LOWEST(tCost) AND LOWEST(delay)

:func:`parse_query` turns such a string into a
:class:`~repro.query.smj.SkyMapJoinQuery`.  Supported surface:

* two tables in ``FROM``, each with a mandatory alias,
* exactly one equi-join condition between the two aliases,
* any number of local filters (``=  !=  <  <=  >  >=``, ``attr IN (...)``
  and the paper's ``literal IN attr`` membership test on collection
  columns),
* arithmetic select expressions (``+ - * /``, parentheses, numeric literals
  with the paper's ``K``/``M`` suffixes) aliased with ``AS``,
* a ``PREFERRING`` clause of ``LOWEST(...)``/``HIGHEST(...)`` terms joined
  by ``AND``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import ParseError, QueryError
from repro.query.expressions import Attr, BinOp, Const, Expression, Neg
from repro.query.mapping import MappingFunction, MappingSet
from repro.query.smj import (
    FilterCondition,
    JoinCondition,
    PassThrough,
    SkyMapJoinQuery,
)
from repro.skyline.preferences import Direction, ParetoPreference, Preference

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "AS", "PREFERRING",
    "LOWEST", "HIGHEST", "IN",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?(?:[kKmM]\b)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<string>'[^']*')
  | (?P<op><=|>=|!=|<>|=|<|>|\+|-|\*|/|\(|\)|,|\.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str  # 'number' | 'ident' | 'keyword' | 'string' | 'op' | 'eof'
    value: Any
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        if m.lastgroup == "ws":
            pos = m.end()
            continue
        raw = m.group()
        if m.lastgroup == "number":
            mult = 1.0
            if raw[-1] in "kK":
                mult, raw = 1e3, raw[:-1]
            elif raw[-1] in "mM":
                mult, raw = 1e6, raw[:-1]
            tokens.append(_Token("number", float(raw) * mult, pos))
        elif m.lastgroup == "ident":
            upper = raw.upper()
            if upper in _KEYWORDS:
                tokens.append(_Token("keyword", upper, pos))
            else:
                tokens.append(_Token("ident", raw, pos))
        elif m.lastgroup == "string":
            tokens.append(_Token("string", raw[1:-1], pos))
        else:
            op = "!=" if raw == "<>" else raw
            tokens.append(_Token("op", op, pos))
        pos = m.end()
    tokens.append(_Token("eof", None, len(text)))
    return tokens


@dataclass
class _SelectItem:
    expression: Expression
    output_name: str | None
    pos: int


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.i = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> _Token:
        return self.tokens[self.i]

    def _next(self) -> _Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def _expect_keyword(self, word: str) -> _Token:
        tok = self._next()
        if tok.kind != "keyword" or tok.value != word:
            raise ParseError(f"expected {word}, found {tok.value!r}", tok.pos)
        return tok

    def _expect_op(self, op: str) -> _Token:
        tok = self._next()
        if tok.kind != "op" or tok.value != op:
            raise ParseError(f"expected {op!r}, found {tok.value!r}", tok.pos)
        return tok

    def _expect_ident(self) -> _Token:
        tok = self._next()
        if tok.kind != "ident":
            raise ParseError(f"expected identifier, found {tok.value!r}", tok.pos)
        return tok

    def _at_keyword(self, word: str) -> bool:
        tok = self._peek()
        return tok.kind == "keyword" and tok.value == word

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse(self) -> SkyMapJoinQuery:
        self._expect_keyword("SELECT")
        items = self._select_list()
        self._expect_keyword("FROM")
        tables = self._table_refs()
        self._expect_keyword("WHERE")
        join, filters = self._conditions({alias for alias, _ in tables})
        preferences: list[Preference] = []
        if self._at_keyword("PREFERRING"):
            self._next()
            preferences = self._preferences()
        tok = self._peek()
        if tok.kind != "eof":
            raise ParseError(f"unexpected trailing input {tok.value!r}", tok.pos)
        return self._assemble(items, tables, join, filters, preferences)

    def _select_list(self) -> list[_SelectItem]:
        items = [self._select_item()]
        while self._peek().kind == "op" and self._peek().value == ",":
            # Stop at the FROM boundary: commas also separate table refs.
            self._next()
            items.append(self._select_item())
        return items

    def _select_item(self) -> _SelectItem:
        pos = self._peek().pos
        expr = self._expression()
        name = None
        if self._at_keyword("AS"):
            self._next()
            name = self._expect_ident().value
        return _SelectItem(expr, name, pos)

    def _table_refs(self) -> list[tuple[str, str]]:
        refs = [self._table_ref()]
        self._expect_op(",")
        refs.append(self._table_ref())
        if self._peek().kind == "op" and self._peek().value == ",":
            tok = self._peek()
            raise ParseError(
                "SkyMapJoin queries join exactly two tables", tok.pos
            )
        return refs

    def _table_ref(self) -> tuple[str, str]:
        table = self._expect_ident().value
        alias = self._expect_ident().value
        return (alias, table)

    def _conditions(
        self, aliases: set[str]
    ) -> tuple[tuple[str, str, str, str], list[FilterCondition]]:
        join: tuple[str, str, str, str] | None = None  # lalias, lattr, ralias, rattr
        filters: list[FilterCondition] = []
        while True:
            jf = self._condition(aliases)
            if isinstance(jf, FilterCondition):
                filters.append(jf)
            else:
                if join is not None:
                    raise ParseError(
                        "multiple join conditions; exactly one equi-join is supported",
                        self._peek().pos,
                    )
                join = jf
            if self._at_keyword("AND"):
                self._next()
                continue
            break
        if join is None:
            raise ParseError("WHERE clause contains no join condition",
                             self._peek().pos)
        return join, filters

    def _condition(self, aliases: set[str]):
        tok = self._peek()
        # literal IN alias.attr  (collection-membership filter)
        if tok.kind in ("string", "number"):
            literal = self._next().value
            self._expect_keyword("IN")
            alias, attr = self._qualified()
            return FilterCondition(alias, attr, "contains", literal)
        alias, attr = self._qualified()
        nxt = self._next()
        if nxt.kind == "keyword" and nxt.value == "IN":
            self._expect_op("(")
            values = [self._literal()]
            while self._peek().kind == "op" and self._peek().value == ",":
                self._next()
                values.append(self._literal())
            self._expect_op(")")
            return FilterCondition(alias, attr, "in", tuple(values))
        if nxt.kind != "op" or nxt.value not in ("=", "!=", "<", "<=", ">", ">="):
            raise ParseError(f"expected comparison operator, found {nxt.value!r}", nxt.pos)
        op = nxt.value
        rhs = self._peek()
        if rhs.kind == "ident":
            r_alias, r_attr = self._qualified()
            if op != "=":
                raise ParseError(
                    f"only equi-joins are supported between attributes, found {op!r}",
                    rhs.pos,
                )
            if alias == r_alias:
                raise ParseError(
                    f"join condition references alias {alias!r} on both sides", rhs.pos
                )
            return (alias, attr, r_alias, r_attr)
        literal = self._literal()
        return FilterCondition(alias, attr, op, literal)

    def _qualified(self) -> tuple[str, str]:
        alias = self._expect_ident().value
        self._expect_op(".")
        attr = self._expect_ident().value
        return alias, attr

    def _literal(self) -> Any:
        tok = self._next()
        if tok.kind == "number":
            return tok.value
        if tok.kind == "string":
            return tok.value
        raise ParseError(f"expected literal, found {tok.value!r}", tok.pos)

    def _preferences(self) -> list[Preference]:
        prefs = [self._preference()]
        while self._at_keyword("AND"):
            self._next()
            prefs.append(self._preference())
        return prefs

    def _preference(self) -> Preference:
        tok = self._next()
        if tok.kind != "keyword" or tok.value not in ("LOWEST", "HIGHEST"):
            raise ParseError(
                f"expected LOWEST or HIGHEST, found {tok.value!r}", tok.pos
            )
        direction = Direction.LOWEST if tok.value == "LOWEST" else Direction.HIGHEST
        self._expect_op("(")
        name = self._expect_ident().value
        self._expect_op(")")
        return Preference(name, direction)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _expression(self) -> Expression:
        return self._additive()

    def _additive(self) -> Expression:
        node = self._multiplicative()
        while self._peek().kind == "op" and self._peek().value in ("+", "-"):
            op = self._next().value
            node = BinOp(op, node, self._multiplicative())
        return node

    def _multiplicative(self) -> Expression:
        node = self._unary()
        while self._peek().kind == "op" and self._peek().value in ("*", "/"):
            op = self._next().value
            node = BinOp(op, node, self._unary())
        return node

    def _unary(self) -> Expression:
        tok = self._peek()
        if tok.kind == "op" and tok.value == "-":
            self._next()
            return Neg(self._unary())
        return self._primary()

    def _primary(self) -> Expression:
        tok = self._next()
        if tok.kind == "number":
            return Const(tok.value)
        if tok.kind == "op" and tok.value == "(":
            inner = self._expression()
            self._expect_op(")")
            return inner
        if tok.kind == "ident":
            self._expect_op(".")
            attr = self._expect_ident().value
            return Attr(tok.value, attr)
        raise ParseError(f"unexpected token {tok.value!r} in expression", tok.pos)

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def _assemble(
        self,
        items: list[_SelectItem],
        tables: list[tuple[str, str]],
        join_raw: tuple[str, str, str, str],
        filters: list[FilterCondition],
        preferences: list[Preference],
    ) -> SkyMapJoinQuery:
        (left_alias, _), (right_alias, _) = tables
        j_lalias, j_lattr, j_ralias, j_rattr = join_raw
        if {j_lalias, j_ralias} != {left_alias, right_alias}:
            raise ParseError(
                f"join condition uses aliases {j_lalias!r}/{j_ralias!r} but FROM "
                f"declares {left_alias!r}/{right_alias!r}"
            )
        if j_lalias == left_alias:
            join = JoinCondition(j_lattr, j_rattr)
        else:
            join = JoinCondition(j_rattr, j_lattr)
        mappings: list[MappingFunction] = []
        passthrough: list[PassThrough] = []
        seen_names: set[str] = set()
        for item in items:
            expr = item.expression
            if isinstance(expr, Attr) and item.output_name is None:
                name = expr.name
                if name in seen_names:
                    name = f"{expr.alias}.{expr.name}"
                seen_names.add(name)
                passthrough.append(PassThrough(expr.alias, expr.name, name))
            elif isinstance(expr, Attr) and item.output_name is not None:
                if item.output_name in seen_names:
                    raise ParseError(
                        f"duplicate output name {item.output_name!r}", item.pos
                    )
                seen_names.add(item.output_name)
                passthrough.append(
                    PassThrough(expr.alias, expr.name, item.output_name)
                )
            else:
                if item.output_name is None:
                    raise ParseError(
                        "computed select expressions need an AS alias", item.pos
                    )
                if item.output_name in seen_names:
                    raise ParseError(
                        f"duplicate output name {item.output_name!r}", item.pos
                    )
                seen_names.add(item.output_name)
                mappings.append(MappingFunction(item.output_name, expr))
        if not mappings:
            raise ParseError(
                "query defines no mapping functions (AS-aliased expressions)",
                0,
            )
        if not preferences:
            raise ParseError("query has no PREFERRING clause", len(self.text))
        try:
            query = SkyMapJoinQuery(
                left_alias=left_alias,
                right_alias=right_alias,
                join=join,
                mappings=MappingSet(mappings),
                preference=ParetoPreference(preferences),
                filters=tuple(filters),
                passthrough=tuple(passthrough),
                table_names=tuple(tables),
            )
        except QueryError as exc:
            raise ParseError(str(exc)) from exc
        return query


def parse_query(text: str) -> SkyMapJoinQuery:
    """Parse an SMJ query string into a :class:`SkyMapJoinQuery`."""
    return _Parser(text).parse()


def _parse_fragment(text: str, production):
    """Run one grammar production over ``text``, requiring full consumption."""
    parser = _Parser(text)
    node = production(parser)
    tok = parser._peek()
    if tok.kind != "eof":
        raise ParseError(f"unexpected trailing input {tok.value!r}", tok.pos)
    return node


def parse_expression(text: str) -> Expression:
    """Parse a standalone mapping expression, e.g. ``"R.uPrice + T.uShipCost"``.

    The grammar is the parser's select-expression production: ``+ - * /``,
    parentheses, unary minus, ``alias.attr`` references and numeric literals
    (with the paper's ``K``/``M`` suffixes).
    """
    return _parse_fragment(text, _Parser._expression)


def parse_preference(text: str) -> Preference:
    """Parse one preference term, e.g. ``"LOWEST(tCost)"`` (case-insensitive)."""
    return _parse_fragment(text, _Parser._preference)


def parse_condition(text: str) -> FilterCondition | JoinCondition:
    """Parse one WHERE-clause condition.

    A cross-alias equality like ``"R.country = T.country"`` yields a
    :class:`JoinCondition` (attribute order follows the text); anything else
    — ``"R.manCap >= 100K"``, ``"R.part IN ('P1', 'P2')"``, the paper's
    ``"'P1' IN R.suppliedParts"`` membership test — yields the corresponding
    :class:`FilterCondition`.
    """
    raw = _parse_fragment(text, lambda p: p._condition(set()))
    if isinstance(raw, FilterCondition):
        return raw
    _lalias, lattr, _ralias, rattr = raw
    return JoinCondition(lattr, rattr)
