"""Render a :class:`~repro.query.smj.SkyMapJoinQuery` back to the paper's
SQL surface syntax.

``parse_query(render_query(q))`` is semantically the identity (verified by
property tests), which makes queries serialisable — useful for logging,
debugging and the CLI.
"""

from __future__ import annotations

from typing import Any

from repro.errors import QueryError
from repro.query.expressions import Attr, BinOp, Const, Expression, Neg
from repro.query.smj import FilterCondition, SkyMapJoinQuery
from repro.skyline.preferences import Direction


def render_number(value: float) -> str:
    """Format a number so the query lexer can read it back.

    The lexer accepts plain decimals only (no scientific notation, no
    leading ``-`` inside a literal), so large/small magnitudes are written
    in positional notation.
    """
    if value != value or value in (float("inf"), float("-inf")):
        raise QueryError(f"cannot render non-finite number {value}")
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    text = f"{value:.12f}".rstrip("0").rstrip(".")
    return text if text else "0"


def render_expression(expr: Expression) -> str:
    """Parenthesised textual form of an expression."""
    if isinstance(expr, Const):
        if expr.value < 0:
            return f"(0 - {render_number(-expr.value)})"
        return render_number(expr.value)
    if isinstance(expr, Attr):
        return f"{expr.alias}.{expr.name}"
    if isinstance(expr, Neg):
        return f"(-{render_expression(expr.operand)})"
    if isinstance(expr, BinOp):
        left = render_expression(expr.left)
        right = render_expression(expr.right)
        return f"({left} {expr.op} {right})"
    raise QueryError(f"cannot render expression node {type(expr).__name__}")


def _render_literal(value: Any) -> str:
    if isinstance(value, str):
        if "'" in value:
            raise QueryError(f"cannot render string literal containing a quote: {value!r}")
        return f"'{value}'"
    if isinstance(value, bool):
        raise QueryError("boolean literals are not part of the query surface")
    if isinstance(value, (int, float)):
        return render_number(float(value))
    raise QueryError(f"cannot render literal of type {type(value).__name__}")


def _render_filter(f: FilterCondition) -> str:
    if f.op == "contains":
        return f"{_render_literal(f.literal)} IN {f.alias}.{f.attribute}"
    if f.op == "in":
        inner = ", ".join(_render_literal(v) for v in f.literal)
        return f"{f.alias}.{f.attribute} IN ({inner})"
    return f"{f.alias}.{f.attribute} {f.op} {_render_literal(f.literal)}"


def render_query(query: SkyMapJoinQuery) -> str:
    """Serialise the query to the SQL-with-PREFERRING surface."""
    select_items = []
    for pt in query.passthrough:
        item = f"{pt.alias}.{pt.attribute}"
        if pt.output_name not in (pt.attribute, f"{pt.alias}.{pt.attribute}"):
            item += f" AS {pt.output_name}"
        select_items.append(item)
    for mapping in query.mappings:
        select_items.append(
            f"{render_expression(mapping.expression)} AS {mapping.name}"
        )

    names = dict(query.table_names)
    left_table = names.get(query.left_alias, query.left_alias)
    right_table = names.get(query.right_alias, query.right_alias)

    conditions = [
        f"{query.left_alias}.{query.join.left_attr} = "
        f"{query.right_alias}.{query.join.right_attr}"
    ]
    conditions.extend(_render_filter(f) for f in query.filters)

    prefs = " AND ".join(
        f"{'LOWEST' if p.direction is Direction.LOWEST else 'HIGHEST'}"
        f"({p.attribute})"
        for p in query.preference
    )

    return (
        f"SELECT {', '.join(select_items)}\n"
        f"FROM {left_table} {query.left_alias}, "
        f"{right_table} {query.right_alias}\n"
        f"WHERE {' AND '.join(conditions)}\n"
        f"PREFERRING {prefs}"
    )
