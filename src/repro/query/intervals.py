"""Closed-interval arithmetic.

The output-space look-ahead (paper §III-A) maps *partition bounding boxes*
through the query's mapping functions to obtain output regions without
touching tuples.  Interval arithmetic is the machinery that makes this
sound: evaluating an expression over intervals yields an interval guaranteed
to contain every point-wise evaluation over values drawn from those
intervals.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` with ``lo <= hi``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"interval lower bound {self.lo} exceeds upper {self.hi}")

    @classmethod
    def point(cls, value: float) -> "Interval":
        """Degenerate interval containing a single value."""
        return cls(value, value)

    @property
    def width(self) -> float:
        """``hi - lo``."""
        return self.hi - self.lo

    def contains(self, value: float, *, tol: float = 1e-9) -> bool:
        """Whether ``value`` lies inside the interval (with tolerance)."""
        return self.lo - tol <= value <= self.hi + tol

    def union(self, other: "Interval") -> "Interval":
        """Smallest interval covering both operands."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersects(self, other: "Interval") -> bool:
        """Whether the intervals overlap (closed-interval semantics)."""
        return self.lo <= other.hi and other.lo <= self.hi

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Interval | float") -> "Interval":
        if isinstance(other, Interval):
            return Interval(self.lo + other.lo, self.hi + other.hi)
        return Interval(self.lo + other, self.hi + other)

    __radd__ = __add__

    def __sub__(self, other: "Interval | float") -> "Interval":
        if isinstance(other, Interval):
            return Interval(self.lo - other.hi, self.hi - other.lo)
        return Interval(self.lo - other, self.hi - other)

    def __rsub__(self, other: float) -> "Interval":
        return Interval(other - self.hi, other - self.lo)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval | float") -> "Interval":
        if isinstance(other, Interval):
            products = (
                self.lo * other.lo,
                self.lo * other.hi,
                self.hi * other.lo,
                self.hi * other.hi,
            )
            return Interval(min(products), max(products))
        if other >= 0:
            return Interval(self.lo * other, self.hi * other)
        return Interval(self.hi * other, self.lo * other)

    __rmul__ = __mul__

    def __truediv__(self, other: "Interval | float") -> "Interval":
        if isinstance(other, Interval):
            if other.lo <= 0.0 <= other.hi:
                raise ZeroDivisionError(
                    f"division by an interval containing zero: {other}"
                )
            candidates = (
                self.lo / other.lo,
                self.lo / other.hi,
                self.hi / other.lo,
                self.hi / other.hi,
            )
            return Interval(min(candidates), max(candidates))
        if other == 0:
            raise ZeroDivisionError("division by zero")
        if other > 0:
            return Interval(self.lo / other, self.hi / other)
        return Interval(self.hi / other, self.lo / other)

    def __rtruediv__(self, other: float) -> "Interval":
        return Interval.point(other) / self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo}, {self.hi}]"
