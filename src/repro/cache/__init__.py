"""Cross-query work sharing: shared partition/plan caching.

The ProgXe pipeline front-loads expensive query-independent work — input
partitioning and join-value signature construction over the base tables.
This package lets concurrent queries share that work instead of redoing it:

* :class:`PartitionStore` — a bounded LRU of built input grids / quad-trees,
  keyed by :class:`PartitionKey` (table identity+version, mapping
  attributes, join attribute, partitioner configuration);
* :class:`PlanCache` — the planning-facing wrapper
  :meth:`repro.core.plan.QueryPlan.build` consumes, owned by each
  :class:`~repro.session.service.Session` so its queries (and any
  :class:`~repro.session.scheduler.QueryScheduler` over it) share
  automatically;
* :class:`CacheStats` — hits / misses / evictions / invalidations, surfaced
  through :class:`~repro.session.stream.StreamStats` and the ``serve`` CLI.

Sharing never changes results: cached structures are read-only during
execution and every mutation of a :class:`~repro.storage.table.Table`
through its API bumps the version token embedded in the key.
"""

from repro.cache.plan_cache import PlanCache
from repro.cache.store import CacheStats, PartitionKey, PartitionStore

__all__ = [
    "CacheStats",
    "PartitionKey",
    "PartitionStore",
    "PlanCache",
]
