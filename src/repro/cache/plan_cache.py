"""The planning-facing face of cross-query work sharing.

:class:`PlanCache` is the object :meth:`repro.core.plan.QueryPlan.build`
consumes: it owns a :class:`~repro.cache.store.PartitionStore` and answers
"partition this table with this partitioner" either from cache or by
running the partitioner.  Everything *after* phase 1 — push-through,
look-ahead, region wiring, cones — stays per-query, because it depends on
the query's preferences, mapping functions and conditions.

A :class:`~repro.session.service.Session` owns one ``PlanCache`` by default,
so concurrent queries over the same registered tables share partitioning
work automatically; ``EngineConfig(share_partitions=False)`` (per query) or
``SchedulerConfig(share_partitions=False)`` (per scheduler) opt out.
"""

from __future__ import annotations

from typing import Sequence

from repro.cache.store import CacheStats, PartitionKey, PartitionStore
from repro.storage.sources.base import DataSource, delta_start_row


class PlanCache:
    """Shared partition/plan-prologue cache used by ``QueryPlan.build``.

    Example::

        cache = PlanCache(max_entries=32)
        grid, hit = cache.get_or_partition(
            GridPartitioner(4, "exact"), table, ("a0", "a1"), "jkey",
            source="R",
        )
        assert not hit                     # first build: a miss
        _, hit = cache.get_or_partition(
            GridPartitioner(4, "exact"), table, ("a0", "a1"), "jkey",
            source="R",
        )
        assert hit                         # same table+config: shared
        cache.stats().hit_rate             # 0.5

    The cache is cooperative-concurrency safe: the scheduler interleaves
    kernels on one thread, and the structures handed out are read-only
    during execution, so no locking is needed.
    """

    def __init__(
        self,
        store: PartitionStore | None = None,
        *,
        max_entries: int = 64,
    ) -> None:
        self.store = store if store is not None else PartitionStore(max_entries)

    def key_for(
        self,
        partitioner,
        table: DataSource,
        attributes: Sequence[str],
        join_attribute: str,
        *,
        source: str | None = None,
    ) -> PartitionKey:
        """The :class:`PartitionKey` this cache would use for the request."""
        return PartitionKey.for_table(
            table, attributes, join_attribute, partitioner.descriptor(),
            source=source,
        )

    def get_or_partition(
        self,
        partitioner,
        table: DataSource,
        attributes: Sequence[str],
        join_attribute: str,
        *,
        source: str | None = None,
    ) -> tuple[object, bool]:
        """Partition ``table`` (or reuse a shared build); returns
        ``(structure, hit)``.

        ``partitioner`` is a :class:`~repro.storage.grid.GridPartitioner` or
        :class:`~repro.storage.quadtree.QuadTreePartitioner`; its
        ``descriptor()`` plus the table's
        :attr:`~repro.storage.sources.base.DataSource.cache_token` form
        the key.
        """
        structure, outcome, _ = self.get_or_partition_outcome(
            partitioner, table, attributes, join_attribute, source=source
        )
        return structure, outcome != "miss"

    def get_or_partition_outcome(
        self,
        partitioner,
        table: DataSource,
        attributes: Sequence[str],
        join_attribute: str,
        *,
        source: str | None = None,
    ) -> tuple[object, str, int]:
        """Like :meth:`get_or_partition` but returns ``(structure, outcome,
        delta_rows)`` with outcome ``"hit"``, ``"patched"`` or ``"miss"``
        (``delta_rows`` is the number of appended rows a patch consumed;
        0 for hits and misses).

        ``"patched"`` is the streaming path: the store held the same
        partitioning over an older generation of the table, the source
        proved an append-only delta from that generation
        (:func:`~repro.storage.sources.base.delta_start_row`), and the
        cached structure was *extended* with the appended rows via the
        partitioner's ``partition_delta`` instead of rebuilt — queries
        2..N over a growing table plan in delta time.  An unprovable delta
        (non-append mutation) invalidates the stale generation and
        rebuilds, exactly as before.
        """
        key = self.key_for(
            partitioner, table, attributes, join_attribute, source=source
        )
        patch = getattr(partitioner, "partition_delta", None)
        delta_rows = 0

        def patcher(old_key: PartitionKey, structure: object) -> bool:
            nonlocal delta_rows
            if patch is None:
                return False
            token = (old_key.table_uid, old_key.table_version, old_key.row_count)
            if delta_start_row(table, token) is None:
                return False
            patch(
                structure, table, attributes, join_attribute,
                since_token=token, end_row=key.row_count,
            )
            delta_rows = max(0, key.row_count - old_key.row_count)
            return True

        structure, outcome = self.store.get_or_patch(
            key,
            patcher=patcher,
            builder=lambda: partitioner.partition(
                table, attributes, join_attribute, source=source
            ),
        )
        return structure, outcome, delta_rows

    def invalidate(self, table: DataSource) -> int:
        """Drop every cached partitioning of ``table``; returns the count."""
        return self.store.invalidate_table(table)

    def clear(self) -> None:
        """Drop everything held by the underlying store."""
        self.store.clear()

    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the underlying store."""
        return self.store.stats()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlanCache({self.store!r})"
