"""The shared partition store: memoised phase-1 work, keyed by content.

Input partitioning — gridding or quad-treeing a table over its mapping
attributes and attaching join-value signatures to every cell — is the
expensive *query-independent* prologue of the ProgXe pipeline: it depends
only on the table's contents, the partitioning attributes, the join
attribute and the partitioner configuration, never on preferences or filter
conditions.  :class:`PartitionStore` memoises that work so N concurrent
queries over the same tables partition once and share the result.

Safety rests on two facts:

* built :class:`~repro.storage.grid.InputGrid` /
  :class:`~repro.storage.quadtree.QuadTreeIndex` structures are **read-only
  during execution** — the kernel reads partition rows and signatures but
  mutates only its own per-plan regions and output grid, so one structure
  can back any number of simultaneous kernels;
* every key embeds the source's :attr:`~repro.storage.sources.base.DataSource.cache_token`
  (identity, version, cardinality), so mutating a table through its API
  bumps the version and the next plan rebuilds instead of reading stale
  partitions.

The store is a bounded LRU: least-recently-used entries are evicted once
``max_entries`` is exceeded, and per-table invalidation
(:meth:`PartitionStore.invalidate_table`) drops every generation of a
table's entries at once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import QueryError
from repro.storage.sources.base import DataSource


@dataclass(frozen=True)
class PartitionKey:
    """Identity of one memoised partitioning.

    Two plans may share a built input grid exactly when all of these agree:

    table_uid / table_version / row_count:
        The source's :attr:`~repro.storage.sources.base.DataSource.cache_token`
        unpacked — which source, which mutation generation, how many rows.
        In-memory uids are process-unique integers; file- and
        database-backed uids are structural tuples (backend, path, …), so
        uids can never collide across backends.
    source:
        The alias the partitioning was built under (``"R"``/``"T"``); baked
        into every :class:`~repro.storage.partition.InputPartition`, so an
        alias mismatch must miss.
    attributes:
        The mapping attributes that form the grid dimensions, in order.
    join_attribute:
        The column feeding the join-value signatures.
    partitioner:
        The partitioner's ``descriptor()`` — kind plus every knob that
        shapes the structure (cells per dimension, leaf capacity and depth,
        signature kind, bloom geometry).
    backend:
        The source's :attr:`~repro.storage.sources.base.DataSource.kind`.
        Redundant with the uid's structure, but it makes the hygiene rule
        explicit: the same logical data held by two different backends can
        never share a cache entry (their partitions differ in row-storage
        strategy and value coercion).
    """

    table_uid: Any
    table_version: Any
    row_count: int
    source: str
    attributes: tuple[str, ...]
    join_attribute: str
    partitioner: tuple
    backend: str = "memory"

    @classmethod
    def for_source(
        cls,
        table: DataSource,
        attributes: Sequence[str],
        join_attribute: str,
        partitioner_descriptor: tuple,
        *,
        source: str | None = None,
    ) -> "PartitionKey":
        """Build the key for partitioning a data source under alias ``source``."""
        uid, version, rows = table.cache_token
        return cls(
            table_uid=uid,
            table_version=version,
            row_count=rows,
            source=source or table.name,
            attributes=tuple(attributes),
            join_attribute=join_attribute,
            partitioner=tuple(partitioner_descriptor),
            backend=getattr(table, "kind", "memory"),
        )

    #: Historical name (pre-``DataSource``); same behaviour.
    for_table = for_source


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of a :class:`PartitionStore` (or a whole
    :class:`~repro.cache.plan_cache.PlanCache`).

    Example::

        stats = session.plan_cache.stats()
        print(stats.hits, stats.misses, stats.hit_rate)
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries: int = 0
    #: Append-only delta patches applied in place of a rebuild: a stale
    #: generation was *extended* with the appended rows and re-keyed,
    #: rather than invalidated.  Counted separately from both hits and
    #: misses — the patched-vs-invalidated split is what proves streaming
    #: queries 2..N reuse work instead of replanning.
    patched: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + patches + misses)."""
        return self.hits + self.patched + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache — patches count as
        served (0.0 when none yet)."""
        served = self.hits + self.patched
        return served / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int | float]:
        """Plain-dict form for JSON reports and CLI output."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "patched": self.patched,
            "entries": self.entries,
            "hit_rate": round(self.hit_rate, 4),
        }


class PartitionStore:
    """Bounded LRU store of built input partitionings.

    Example::

        store = PartitionStore(max_entries=32)
        key = PartitionKey.for_table(table, ("a0", "a1"), "jkey",
                                     partitioner.descriptor(), source="R")
        grid, hit = store.get_or_build(
            key, lambda: partitioner.partition(table, ("a0", "a1"), "jkey",
                                               source="R"))

    ``get_or_build`` returns the cached structure and ``hit=True`` on a key
    match; otherwise it runs ``builder``, stores the result and returns it
    with ``hit=False``.  A failing builder stores nothing.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise QueryError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[PartitionKey, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._patched = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PartitionKey) -> bool:
        return key in self._entries

    def get(self, key: PartitionKey):
        """The cached structure for ``key``, or ``None`` (counts a miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return entry

    def put(self, key: PartitionKey, structure) -> None:
        """Store ``structure`` under ``key``, evicting LRU entries if full."""
        self._entries[key] = structure
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    def get_or_build(
        self, key: PartitionKey, builder: Callable[[], object]
    ) -> tuple[object, bool]:
        """Return ``(structure, hit)``; on a miss, build and store first."""
        entry = self.get(key)
        if entry is not None:
            return entry, True
        structure = builder()
        self.put(key, structure)
        return structure, False

    def _find_stale(self, key: PartitionKey) -> PartitionKey | None:
        """An entry agreeing with ``key`` on every structural field but
        holding a different (older) table generation — the candidate for an
        append-only patch.  Prefers the generation with the most rows; the
        store is small (bounded LRU), so a linear scan is fine.
        """
        best: PartitionKey | None = None
        for old_key in self._entries:
            if (
                old_key != key
                and old_key.table_uid == key.table_uid
                and old_key.source == key.source
                and old_key.attributes == key.attributes
                and old_key.join_attribute == key.join_attribute
                and old_key.partitioner == key.partitioner
                and old_key.backend == key.backend
            ):
                if best is None or old_key.row_count > best.row_count:
                    best = old_key
        return best

    def get_or_patch(
        self,
        key: PartitionKey,
        *,
        patcher: Callable[[PartitionKey, object], bool],
        builder: Callable[[], object],
    ) -> tuple[object, str]:
        """Return ``(structure, outcome)`` — outcome ``"hit"``, ``"patched"``
        or ``"miss"``.

        The streaming-aware lookup: on a key miss, scan for a stale
        generation of the same partitioning (same table/alias/attributes/
        partitioner, older version token) and ask ``patcher(old_key,
        structure)`` to extend it in place with the appended rows.  On
        success the entry is **re-keyed** to ``key`` and counted as
        *patched* — neither a hit nor a miss.  A patcher returning False
        (the source cannot prove an append-only delta) drops the stale
        generation (counted as an invalidation) and falls through to a
        plain miss + build.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self._hits += 1
            return entry, "hit"
        old_key = self._find_stale(key)
        if old_key is not None:
            stale = self._entries[old_key]
            if patcher(old_key, stale):
                del self._entries[old_key]
                self._entries[key] = stale
                self._entries.move_to_end(key)
                self._patched += 1
                return stale, "patched"
            del self._entries[old_key]
            self._invalidations += 1
        self._misses += 1
        structure = builder()
        self.put(key, structure)
        return structure, "miss"

    def invalidate_table(self, table: DataSource) -> int:
        """Drop every entry built over ``table`` (any version); return count.

        Version-bumping mutation already guarantees correctness; explicit
        invalidation additionally frees the memory of unreachable
        generations immediately instead of waiting for LRU eviction.
        """
        uid = table.uid
        stale = [k for k in self._entries if k.table_uid == uid]
        for key in stale:
            del self._entries[key]
        self._invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        """Drop all entries (counters keep accumulating)."""
        self._invalidations += len(self._entries)
        self._entries.clear()

    def stats(self) -> CacheStats:
        """Current :class:`CacheStats` snapshot."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            invalidations=self._invalidations,
            entries=len(self._entries),
            patched=self._patched,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"PartitionStore({s.entries}/{self.max_entries} entries, "
            f"hits={s.hits}, misses={s.misses}, evictions={s.evictions})"
        )
