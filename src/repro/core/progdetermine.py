"""ProgDetermine: progressive result determination (paper §V, Algorithm 2).

Decides which output cells can be emitted *safely* — provably members of
the final skyline — and when.  The paper's Principle 1 requires, for a cell
``Oh``:

1. no future tuple will map into ``Oh`` (its RegCount reached zero),
2. every cell that would dominate ``Oh`` outright is settled empty (else
   ``Oh`` would have been marked),
3. every cell that could contribute *individual* dominators has settled —
   all its tuples exist and their comparisons have pruned ``Oh``.

This implementation realises the paper's count-based variant: conditions
(2) and (3) collapse into one ``pending`` counter per cell — the number of
unsettled cells in its dominance cone — maintained by settle notifications
(the count decrements replacing the Dom/DomBy/Dependent/Dependence list
removals of Algorithm 2).

:class:`ExecutionState` owns the mutable execution structures and exposes
the three state transitions (settle, mark, region completion) plus the
tuple-insertion path used by tuple-level processing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.output_grid import CellEntry, OutputCell, OutputGrid
from repro.core.regions import OutputRegion
from repro.errors import ExecutionError
from repro.query.smj import BoundQuery
from repro.runtime.clock import VirtualClock
from repro.skyline.dominance import dominates
from repro.skyline.vectorized import dominates_matrix, skyline_mask


class ExecutionState:
    """Shared mutable state of one ProgXe execution."""

    def __init__(
        self,
        bound: BoundQuery,
        regions: list[OutputRegion],
        grid: OutputGrid,
        clock: VirtualClock,
    ) -> None:
        self.bound = bound
        self.grid = grid
        self.clock = clock
        self.regions = {r.rid: r for r in regions}
        self.active_region: OutputRegion | None = None
        self.newly_discarded: list[OutputRegion] = []
        self._emissions: list[CellEntry] = []
        #: Streaming mode: while the arrival window is open a settled cell
        #: may be *reopened* by a region built over later-arriving rows, so
        #: "settled with an empty cone" is not yet proof of finality.  The
        #: streaming kernel sets this flag to buffer every emission until
        #: :meth:`release_emissions` declares arrivals over.
        self.hold_emissions = False
        #: Streaming mode: delta rows falling outside a frozen input-grid
        #: domain are clamped into edge partitions, which breaks the
        #: coordinate-granularity argument behind the strict-upper marking
        #: shortcut (a clamped entry's true vector may exceed its cell's
        #: box).  With this flag the marking stage tests full dominance of
        #: the candidate over the cell's lower corner instead — sound for
        #: clamped entries and equivalent for unclamped ones.
        self.careful_marking = False
        # Statistics
        self.inserted = 0
        self.discarded_on_arrival = 0
        self.dominated_on_arrival = 0
        self.live_entries = 0
        self.peak_live_entries = 0

    # ------------------------------------------------------------------
    # emission plumbing
    # ------------------------------------------------------------------
    def drain_emissions(self) -> list[CellEntry]:
        """Entries that became safely emittable since the last drain."""
        if not self._emissions:
            return []
        out = self._emissions
        self._emissions = []
        return out

    def emit_settled(self, cell: OutputCell) -> None:
        """Emit ``cell``'s buffered entries if it is provably final.

        Public API used by the engine/kernel bootstrap (cells released
        during look-ahead) and by the internal settle/mark cascades.  A
        no-op unless the cell is :attr:`~repro.core.output_grid.OutputCell.
        emittable` — settled, unmarked, not yet emitted, and with an empty
        pending cone — so it is always safe to call.
        """
        if self.hold_emissions:
            return
        if cell.emittable:
            cell.emitted = True
            if cell.entries:
                # Emitted entries leave the held-back buffer (they remain
                # in the cell for future dominance checks, but the user has
                # them already).
                self.live_entries -= len(cell.entries)
                self._emissions.extend(cell.entries)

    def release_emissions(self) -> None:
        """End the streaming hold: emit every cell that is now final.

        Called by the streaming kernel once the arrival window has closed
        and all regions are processed — from that point the ordinary
        emittable condition is again proof of finality, so one sweep over
        the grid emits everything the hold deferred.
        """
        self.hold_emissions = False
        for cell in self.grid.cells.values():
            self.emit_settled(cell)

    # ------------------------------------------------------------------
    # the three state transitions
    # ------------------------------------------------------------------
    def settle(self, cell: OutputCell) -> None:
        """No future tuple can map to ``cell``; notify its cone."""
        if cell.settled:
            return
        cell.settled = True
        self.emit_settled(cell)
        for uc in cell.cone_upper:
            uc.pending -= 1
            self.emit_settled(uc)

    def mark_cell(self, cell: OutputCell) -> None:
        """Mark ``cell`` non-contributing; drop its buffer, cascade."""
        if cell.marked:
            return
        if cell.emitted:
            raise ExecutionError(
                f"attempt to mark emitted cell {cell!r}; "
                "the emission guarantee is broken"
            )
        cell.marked = True
        if cell.entries:
            self.clock.charge("discard", len(cell.entries))
            self.live_entries -= len(cell.entries)
            cell.entries = []
            cell.invalidate_vectors()
        for rid in cell.region_ids:
            region = self.regions[rid]
            region.unmarked_covered -= 1
            if (
                region.unmarked_covered == 0
                and not region.done
                and region is not self.active_region
            ):
                # Every cell the region could populate is dominated; its
                # tuple-level processing would produce only dominated
                # results.  (The active region is left to finish: its
                # remaining arrivals land in marked cells and are dropped.)
                self.discard_region(region)
        if not cell.settled:
            cell.settled = True
            for uc in cell.cone_upper:
                uc.pending -= 1
                self.emit_settled(uc)

    def reopen_cell(self, cell: OutputCell) -> None:
        """Streaming: a region over newly arrived rows covers ``cell`` again.

        Undoes the settle — future tuples may map here after all — and
        restores the cone's pending counts.  Only unemitted cells can be
        reopened; the streaming kernel's emission hold guarantees that
        while the arrival window is open.  Marked cells stay marked (their
        domination witness remains valid whatever arrives later).
        """
        if cell.emitted:
            raise ExecutionError(
                f"attempt to reopen emitted cell {cell!r}; "
                "the emission guarantee is broken"
            )
        if cell.marked or not cell.settled:
            return
        cell.settled = False
        for uc in cell.cone_upper:
            uc.pending += 1

    def complete_region(self, region: OutputRegion) -> None:
        """Release the region's coverage (Algorithm 2 lines 2–5)."""
        for cell in region.covered:
            cell.reg_count -= 1
            if cell.reg_count == 0 and not cell.settled:
                self.settle(cell)
        region.covered = []

    def discard_region(self, region: OutputRegion) -> None:
        """Discard a dominated region and release its coverage."""
        region.discarded = True
        self.newly_discarded.append(region)
        self.complete_region(region)

    def drain_discarded(self) -> list[OutputRegion]:
        """Regions discarded since the last drain (for the ordering policy)."""
        if not self.newly_discarded:
            return []
        out = self.newly_discarded
        self.newly_discarded = []
        return out

    # ------------------------------------------------------------------
    # tuple insertion (the §III-B comparison-minimising path)
    # ------------------------------------------------------------------
    def insert(
        self,
        vector: tuple[float, ...],
        lrow: tuple,
        rrow: tuple,
        mapped: tuple[float, ...],
    ) -> None:
        """Insert one mapped join result into the output grid."""
        clock = self.clock
        cell = self.grid.cell_for_vector(vector)
        if cell.marked:
            # Dominated wholesale by the cell's marking witness: zero
            # comparisons needed.
            clock.charge("discard")
            self.discarded_on_arrival += 1
            return
        if cell.reg_count <= 0:
            raise ExecutionError(
                f"tuple arrived in settled cell {cell!r}; RegCount accounting broken"
            )

        # (1) Can anything already present dominate the newcomer?  Only the
        # cell itself and its lower cone can (paper §III-B).
        survivors: list[CellEntry] = []
        for entry in cell.entries:
            clock.charge("dominance_cmp")
            if dominates(entry[0], vector):
                self.dominated_on_arrival += 1
                return
            # While scanning, drop same-cell entries the newcomer beats.
            clock.charge("dominance_cmp")
            if not dominates(vector, entry[0]):
                survivors.append(entry)
        for lc in cell.cone_lower:
            if not lc.entries:
                continue
            for entry in lc.entries:
                clock.charge("dominance_cmp")
                if dominates(entry[0], vector):
                    self.dominated_on_arrival += 1
                    return
        self.live_entries -= len(cell.entries) - len(survivors)
        cell.entries = survivors
        cell.invalidate_vectors()

        # (2) The newcomer survived: evict dominated entries upstream.
        for uc in cell.cone_upper:
            if not uc.entries:
                continue
            kept = []
            for entry in uc.entries:
                clock.charge("dominance_cmp")
                if not dominates(vector, entry[0]):
                    kept.append(entry)
            if len(kept) != len(uc.entries):
                self.live_entries -= len(uc.entries) - len(kept)
                uc.entries = kept
                uc.invalidate_vectors()

        # (3) Mark every strictly-dominated cell (Example 3 at tuple
        # granularity): anything ever falling there is dominated by the
        # newcomer — with the value-level strictness guard for boundary
        # ties.
        careful = self.careful_marking
        for sc in cell.strict_upper:
            if sc.marked:
                continue
            clock.charge("partition_op")
            lower = sc.lower
            if careful:
                if dominates(vector, lower):
                    self.mark_cell(sc)
                continue
            strict = False
            for v, b in zip(vector, lower):
                if v < b:
                    strict = True
                    break
            if strict:
                self.mark_cell(sc)

        cell.entries.append((vector, lrow, rrow, mapped))
        cell.invalidate_vectors()
        self.inserted += 1
        self.live_entries += 1
        if self.live_entries > self.peak_live_entries:
            self.peak_live_entries = self.live_entries

    # ------------------------------------------------------------------
    # batched tuple insertion (the vectorized §III-B path)
    # ------------------------------------------------------------------
    def insert_batch(
        self,
        vectors: np.ndarray,
        lrows: Sequence[tuple],
        rrows: Sequence[tuple],
        mapped: np.ndarray,
    ) -> None:
        """Insert a chunk of mapped join results with matrix kernels.

        Semantically equivalent to calling :meth:`insert` per tuple — the
        surviving entry sets, evictions, markings and cascades are
        identical (dominance is transitive, so the outcome is
        order-independent) — but every dominance test runs as one numpy
        broadcast per cell group and comparisons are charged to the clock
        in bulk.  A budget tripwire can therefore fire mid-batch; that is
        safe because nothing is emitted from here (the caller drains
        emissions only after the batch returns), so any previously yielded
        prefix remains provably final.
        """
        clock = self.clock
        grid = self.grid
        n = len(lrows)
        if n == 0:
            return
        coords = grid.coords_matrix(vectors)
        groups: dict[tuple[int, ...], list[int]] = {}
        for i, key in enumerate(map(tuple, coords.tolist())):
            groups.setdefault(key, []).append(i)

        for key, idx in groups.items():
            cell = grid.cells.get(key)
            if cell is None:
                raise ExecutionError(
                    f"mapped result batch fell into inactive cell {key}; "
                    "region covering is broken"
                )
            b = len(idx)
            if cell.marked:
                clock.charge("discard", b)
                self.discarded_on_arrival += b
                continue
            if cell.reg_count <= 0:
                raise ExecutionError(
                    f"tuple batch arrived in settled cell {cell!r}; "
                    "RegCount accounting broken"
                )
            cand = vectors[idx]  # (b, d)

            # (1) Dominator filtering in stages of decreasing kill rate,
            # each stage shrinking the candidate set the next one tests —
            # the bulk analogue of the scalar path's short-circuiting.
            # Stage order is free: dominance is transitive, so the final
            # survivor set is order-independent (an eliminated candidate's
            # victims are also its dominator's victims).
            #
            # (1a) intra-batch: candidates of one region pair are often
            # mutually dominating.  The sweep kernel is O(s·b) for a local
            # skyline of size s — far below the b² of a full pairwise
            # matrix — and reports the pairs it actually tested.
            live = np.arange(b, dtype=np.intp)
            if b > 1:
                tested: list[int] = []
                live = live[skyline_mask(cand, on_comparisons=tested.append)]
                clock.charge("dominance_cmp", sum(tested))
            # (1b) the cell's own entries (charged both directions,
            # mirroring the scalar path's paired dominates() calls).
            own = cell.entries
            own_mat = cell.vector_matrix()
            if own_mat is not None and live.size:
                clock.charge("dominance_cmp", 2 * live.size * len(own))
                hit = dominates_matrix(own_mat, cand[live]).any(axis=0)
                live = live[~hit]
            # (1c) the lower cone, pooled into one matrix / one kernel
            # (per-cell matrices are cached on the cells).
            if live.size:
                cone_mats = [
                    m
                    for m in (lc.vector_matrix() for lc in cell.cone_lower)
                    if m is not None
                ]
                if cone_mats:
                    cone = (
                        np.concatenate(cone_mats)
                        if len(cone_mats) > 1
                        else cone_mats[0]
                    )
                    clock.charge("dominance_cmp", live.size * cone.shape[0])
                    hit = dominates_matrix(cone, cand[live]).any(axis=0)
                    live = live[~hit]
            surv_idx = [idx[i] for i in live]
            self.dominated_on_arrival += b - len(surv_idx)
            if not surv_idx:
                continue
            surv = vectors[surv_idx]
            s = len(surv_idx)

            # (2) Evict dominated entries: same cell plus the upper cone,
            # again pooled into one kernel call and split back per cell.
            targets: list[OutputCell] = []
            evict_mats: list[np.ndarray] = []
            if own_mat is not None:
                targets.append(cell)
                evict_mats.append(own_mat)
            for uc in cell.cone_upper:
                m = uc.vector_matrix()
                if m is not None:
                    targets.append(uc)
                    evict_mats.append(m)
            if targets:
                evict_pool = (
                    np.concatenate(evict_mats)
                    if len(evict_mats) > 1
                    else evict_mats[0]
                )
                upper_total = evict_pool.shape[0] - len(own)
                if upper_total:
                    clock.charge("dominance_cmp", s * upper_total)
                kill = dominates_matrix(surv, evict_pool).any(axis=0)
                pos = 0
                for target, mat in zip(targets, evict_mats):
                    size = mat.shape[0]
                    part = kill[pos : pos + size]
                    pos += size
                    if part.any():
                        kept = [
                            e for e, k in zip(target.entries, part) if not k
                        ]
                        self.live_entries -= len(target.entries) - len(kept)
                        target.entries = kept
                        target.invalidate_vectors()

            # (3) Mark strictly-dominated cells.  One surviving candidate
            # with some dimension strictly below the cell's lower corner
            # suffices, so testing the per-dimension minimum over the
            # survivors is exact.
            unmarked = [sc for sc in cell.strict_upper if not sc.marked]
            if unmarked:
                clock.charge("partition_op", len(unmarked))
                lowers = np.asarray([sc.lower for sc in unmarked], dtype=float)
                if self.careful_marking:
                    to_mark = dominates_matrix(surv, lowers).any(axis=0)
                else:
                    surv_min = surv.min(axis=0)
                    to_mark = (surv_min[None, :] < lowers).any(axis=1)
                for sc, hit in zip(unmarked, to_mark):
                    if hit and not sc.marked:
                        self.mark_cell(sc)

            for i in surv_idx:
                cell.entries.append(
                    (
                        tuple(vectors[i].tolist()),
                        lrows[i],
                        rrows[i],
                        tuple(np.asarray(mapped[i]).tolist()),
                    )
                )
            cell.invalidate_vectors()
            self.inserted += s
            self.live_entries += s
            if self.live_entries > self.peak_live_entries:
                self.peak_live_entries = self.live_entries

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def verify_drained(self) -> None:
        """After all regions are done every live cell must have emitted."""
        for cell in self.grid.cells.values():
            if cell.marked:
                continue
            if not cell.emitted:
                raise ExecutionError(
                    f"execution finished with unemitted live cell {cell!r}"
                )
