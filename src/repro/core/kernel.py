"""The resumable step-based execution kernel (phases 3/4 of the framework).

Historically ``ProgXeEngine.run()`` was one monolithic generator that owned
the interpreter until its region queue drained — a second concurrent query
could only wait.  :class:`ExecutionKernel` inverts that control flow: the
ProgOrder / ProgDetermine loop is re-expressed as an explicit step machine
over a finished :class:`~repro.core.plan.QueryPlan`, and the *caller*
decides when each unit of work runs.

* :meth:`ExecutionKernel.step` — performs exactly one scheduling unit (the
  bootstrap emission pass, one region's tuple-level processing, or the
  final verification) and returns a :class:`StepReport` with the results it
  made emittable plus per-step clock accounting.
* :meth:`ExecutionKernel.pause` / :meth:`ExecutionKernel.resume` — gate
  further stepping; pausing never mutates execution state, so a paused and
  resumed kernel reproduces the uninterrupted result sequence exactly.
* :meth:`ExecutionKernel.snapshot` — progress introspection: regions done,
  cells settled/marked/emitted, results emitted, virtual-clock charges.
* :meth:`ExecutionKernel.drain` — a generator reproducing the historical
  ``run()`` semantics result-for-result (results surface the moment the
  inner loop produces them, mid-region included), so the engine's ``run()``
  stays a thin compatibility wrapper.

Steps and drained results may be interleaved freely — both consume the same
underlying event stream, so ``k`` calls to ``step()`` followed by
``drain()`` yields precisely the suffix an uninterrupted run would have
produced after those steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.benefit import region_benefit
from repro.core.cost import region_cost
from repro.core.elimination_graph import EliminationGraph
from repro.core.plan import QueryPlan
from repro.core.progdetermine import ExecutionState
from repro.core.progorder import ProgOrder, RandomOrder
from repro.core.regions import OutputRegion
from repro.core.tuple_level import DEFAULT_BATCH_SIZE, process_region
from repro.errors import ExecutionError
from repro.query.smj import ResultTuple

#: Kernel lifecycle states.
CREATED = "created"
RUNNING = "running"
PAUSED = "paused"
FINISHED = "finished"

#: Step kinds reported by :meth:`ExecutionKernel.step`.
STEP_BOOTSTRAP = "bootstrap"
STEP_REGION = "region"
STEP_FINALIZE = "finalize"
STEP_IDLE = "idle"
#: Streaming only (:class:`~repro.core.streaming.StreamingKernel`): one
#: arrival poll — absorb appended rows (or observe none) and integrate the
#: resulting regions.
STEP_INGEST = "ingest"


class _StepBoundary:
    """Internal event marking the end of one scheduling unit."""

    __slots__ = ("kind", "region_id")

    def __init__(self, kind: str, region_id: int | None) -> None:
        self.kind = kind
        self.region_id = region_id


@dataclass(frozen=True)
class StepReport:
    """Outcome of one :meth:`ExecutionKernel.step` call.

    kind:
        ``"bootstrap"`` (look-ahead freebies), ``"region"`` (one region's
        tuple-level processing), ``"finalize"`` (verification + stats), or
        ``"idle"`` (step on an already-finished kernel; a no-op).
    results:
        Results that became provably final during this step, in emission
        order.
    region_id:
        The processed region's id for ``"region"`` steps, else ``None``.
    step_index:
        1-based count of non-idle steps taken so far.
    vtime:
        The query clock *after* the step.
    vtime_delta:
        Virtual time charged by this step alone.
    charges:
        Per-operation-kind charge deltas for this step.
    finished:
        True once the kernel has verified and published its stats.

    Step reports are **picklable by contract**: every field is a plain
    value (tuples, dicts, :class:`~repro.query.smj.ResultTuple`
    dataclasses), so a report can cross a process boundary intact — the
    sharded execution worker protocol depends on this, and
    ``tests/test_kernel.py`` round-trips it.
    """

    kind: str
    results: tuple[ResultTuple, ...]
    region_id: int | None
    step_index: int
    vtime: float
    vtime_delta: float
    charges: dict[str, int]
    finished: bool


@dataclass(frozen=True)
class KernelSnapshot:
    """Point-in-time progress picture of a kernel (cheap, read-only).

    Like :class:`StepReport`, snapshots are plain-data and picklable by
    contract (``clock_counts`` is a concrete ``dict`` copy, never a live
    view), so monitoring surfaces can ship them across processes.
    """

    status: str
    steps: int
    results_emitted: int
    regions_total: int
    regions_processed: int
    regions_discarded: int
    regions_pending: int
    cells_active: int
    cells_settled: int
    cells_marked: int
    cells_emitted: int
    inserted: int
    live_entries: int
    vtime: float
    clock_counts: dict[str, int]

    @property
    def regions_done(self) -> int:
        """Regions needing no further work (processed or discarded)."""
        return self.regions_processed + self.regions_discarded


class ExecutionKernel:
    """Resumable step machine over one planned ProgXe execution.

    Construction wires the execution structures (state, elimination graph,
    ordering policy) exactly as the monolithic engine prologue did; no
    tuple-level work happens until the first :meth:`step` (or pull from
    :meth:`drain`).

    Example::

        kernel = ProgXeEngine(bound).kernel()
        report = kernel.step()              # bootstrap emissions
        while not kernel.finished:
            report = kernel.step()          # one region per call
            consume(report.results)         # provably final already
        kernel.snapshot()                   # progress introspection
    """

    def __init__(
        self,
        plan: QueryPlan,
        *,
        stats_sink: dict | None = None,
    ) -> None:
        if plan.consumed:
            raise ExecutionError(
                "QueryPlan has already been executed; execution mutates the "
                "plan's regions and grid, so build a fresh plan for a new run"
            )
        plan.consumed = True
        self.plan = plan
        self.bound = plan.bound
        self.clock = plan.clock
        self.verify = plan.verify
        self.use_vectorized = plan.use_vectorized
        self.batch_size = plan.batch_size or DEFAULT_BATCH_SIZE
        self.stats: dict = stats_sink if stats_sink is not None else {}
        self.stats.update(plan.prune_stats)

        self.state = ExecutionState(plan.bound, plan.regions, plan.grid, plan.clock)
        self.graph = EliminationGraph(plan.regions, plan.clock)
        regions_by_id = self.state.regions
        dims = plan.bound.skyline_dimension_count
        grid = plan.grid

        def rank_fn(region: OutputRegion) -> float:
            benefit = region_benefit(region, regions_by_id, dims)
            cost = region_cost(region, grid, dims)
            return benefit / cost if cost > 0 else benefit

        if plan.ordering:
            self.policy = ProgOrder(self.graph, rank_fn, plan.clock)
        else:
            self.policy = RandomOrder(
                self.graph, rank_fn, plan.clock, seed=plan.seed
            )

        self.steps = 0
        self.results_emitted = 0
        self.regions_processed = 0
        #: True once a propagated exception (error, cancellation interrupt)
        #: terminated the event loop, as opposed to a clean finalize.
        self.aborted = False
        self._status = CREATED
        self._events = self._event_loop()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def status(self) -> str:
        """One of created / running / paused / finished."""
        return self._status

    @property
    def finished(self) -> bool:
        return self._status == FINISHED

    @property
    def paused(self) -> bool:
        return self._status == PAUSED

    def pause(self) -> None:
        """Suspend the kernel between steps.

        Pausing performs no work and mutates no execution state, so it is
        always safe; :meth:`step` and :meth:`drain` refuse to advance until
        :meth:`resume`.  Pausing a finished kernel is a no-op.
        """
        if self._status != FINISHED:
            self._status = PAUSED

    def resume(self) -> None:
        """Lift a :meth:`pause`; a no-op unless currently paused."""
        if self._status == PAUSED:
            self._status = RUNNING

    def close(self) -> None:
        """Abandon the execution (cooperative cancellation).

        The event loop generator is closed and the kernel reports finished;
        no verification or stats publication happens — every result already
        handed out remains provably final (the progressive contract).
        """
        if self._status == FINISHED:
            return
        self._events.close()
        self._status = FINISHED

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> StepReport:
        """Run exactly one scheduling unit and report what it produced.

        Unit granularity: the first call performs the bootstrap emission
        pass (cells already settled by the look-ahead), each following call
        processes one region (or skips a stale queue entry group — still
        one unit of queue work), and the final call runs verification and
        publishes the engine-compatible ``stats``.  Stepping a finished
        kernel returns an ``"idle"`` report, making over-stepping harmless.
        """
        if self._status == FINISHED:
            return StepReport(
                kind=STEP_IDLE, results=(), region_id=None,
                step_index=self.steps, vtime=self.clock.now(),
                vtime_delta=0.0, charges={}, finished=True,
            )
        if self._status == PAUSED:
            raise ExecutionError(
                "execution kernel is paused; call resume() before step()"
            )
        self._status = RUNNING
        t0 = self.clock.now()
        counts0 = self.clock.snapshot()
        results: list[ResultTuple] = []
        kind = STEP_FINALIZE
        region_id: int | None = None
        while True:
            try:
                event = next(self._events)
            except StopIteration:
                # Clean exhaustion: _event_loop ran _finalize() on its way
                # out (status already FINISHED, failed stays False).
                self._status = FINISHED
                break
            except BaseException:
                # The exception kills the event-loop generator: this kernel
                # can never progress again, so report it terminal (and
                # aborted) rather than leaving retrying callers spinning on
                # a dead kernel that claims to be running.
                self._status = FINISHED
                self.aborted = True
                raise
            if isinstance(event, _StepBoundary):
                kind = event.kind
                region_id = event.region_id
                break
            results.append(event)
        self.steps += 1
        self.results_emitted += len(results)
        return StepReport(
            kind=kind,
            results=tuple(results),
            region_id=region_id,
            step_index=self.steps,
            vtime=self.clock.now(),
            vtime_delta=self.clock.now() - t0,
            charges=self.clock.since(counts0),
            finished=self._status == FINISHED,
        )

    def drain(self) -> Iterator[ResultTuple]:
        """Run to completion, yielding each result the moment it is final.

        Reproduces the historical ``ProgXeEngine.run()`` generator
        semantics exactly — including mid-region emissions surfacing before
        the region finishes, which keeps budget/cancellation tripwires
        (installed by the session stream layer) cutting at the same points
        as before the kernel split.  May be called after any number of
        :meth:`step` calls to finish the remainder.
        """
        while True:
            if self._status == FINISHED:
                return
            if self._status == PAUSED:
                raise ExecutionError(
                    "execution kernel is paused; call resume() before draining"
                )
            self._status = RUNNING
            try:
                event = next(self._events)
            except StopIteration:
                self._status = FINISHED
                return
            except BaseException:
                # See step(): a propagated exception (including a budget
                # tripwire interrupt) terminates the event loop for good.
                self._status = FINISHED
                self.aborted = True
                raise
            if isinstance(event, _StepBoundary):
                self.steps += 1
                continue
            self.results_emitted += 1
            yield event

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def peek_rank(self) -> float:
        """Benefit signal of the kernel's next unit of work (pure read).

        Used by cross-query benefit-greedy scheduling.  The un-started
        kernel advertises ``inf`` — its bootstrap step releases the
        look-ahead freebies at near-zero cost, so it should always run
        first.
        """
        if self._status == FINISHED:
            return 0.0
        if self.steps == 0:
            return float("inf")
        return self.policy.peek_rank()

    def snapshot(self) -> KernelSnapshot:
        """Progress snapshot: region, cell, emission and clock counters."""
        regions = self.plan.regions
        discarded = sum(1 for r in regions if r.discarded)
        pending = sum(1 for r in regions if not r.done)
        cells = self.plan.grid.cells.values()
        return KernelSnapshot(
            status=self._status,
            steps=self.steps,
            results_emitted=self.results_emitted,
            regions_total=len(regions),
            regions_processed=self.regions_processed,
            regions_discarded=discarded,
            regions_pending=pending,
            cells_active=self.plan.grid.active_count,
            cells_settled=sum(1 for c in cells if c.settled),
            cells_marked=self.plan.grid.marked_count,
            cells_emitted=sum(1 for c in cells if c.emitted),
            inserted=self.state.inserted,
            live_entries=self.state.live_entries,
            vtime=self.clock.now(),
            clock_counts=self.clock.snapshot(),
        )

    # ------------------------------------------------------------------
    # the event loop (phases 3/4)
    # ------------------------------------------------------------------
    def _event_loop(self) -> Iterator[ResultTuple | _StepBoundary]:
        bound = self.bound
        state = self.state
        policy = self.policy

        # Bootstrap: cells fully released during look-ahead are already
        # final (empty or pre-settled); emit them before any region runs.
        for cell in self.plan.grid.cells.values():
            if cell.settled and not cell.marked:
                state.emit_settled(cell)
        for vector, lrow, rrow, mapped in state.drain_emissions():
            yield bound.make_result(lrow, rrow, mapped)
        yield _StepBoundary(STEP_BOOTSTRAP, None)

        # The ProgOrder / ProgDetermine loop, one region per boundary.
        while True:
            region = policy.next_region()
            if region is None:
                break
            if region.done:
                continue
            for vector, lrow, rrow, mapped in self._process(region):
                yield bound.make_result(lrow, rrow, mapped)
            region.processed = True
            self.regions_processed += 1
            state.complete_region(region)
            for vector, lrow, rrow, mapped in state.drain_emissions():
                yield bound.make_result(lrow, rrow, mapped)
            policy.on_region_done(region)
            for discarded in state.drain_discarded():
                policy.on_region_done(discarded)
            yield _StepBoundary(STEP_REGION, region.rid)

        self._finalize()

    def _process(self, region: OutputRegion):
        """Tuple-level processing of one region (the overridable unit).

        Yields :class:`~repro.core.output_grid.CellEntry` 4-tuples
        ``(vector, lrow, rrow, mapped)`` as they become safely emittable.
        The base kernel runs :func:`~repro.core.tuple_level.process_region`
        inline; :class:`~repro.parallel.ShardedKernel` overrides this hook
        to source the region's join results from a worker process while
        committing them through the same
        :class:`~repro.core.progdetermine.ExecutionState` — everything
        else in the event loop (policy order, region completion, settle
        cascades) is shared.
        """
        return process_region(
            self.state, region, use_vectorized=self.use_vectorized,
            batch_size=self.batch_size,
        )

    def _finalize(self) -> None:
        """Verify the completeness invariant and publish engine stats."""
        if self.verify:
            self.state.verify_drained()
        regions = self.plan.regions
        grid = self.plan.grid
        state = self.state
        self.stats.update(
            {
                "regions_total": len(regions),
                "regions_processed": self.regions_processed,
                "regions_discarded": sum(1 for r in regions if r.discarded),
                "active_cells": grid.active_count,
                "marked_cells": grid.marked_count,
                "inserted": state.inserted,
                "dominated_on_arrival": state.dominated_on_arrival,
                "discarded_on_arrival": state.discarded_on_arrival,
                "peak_buffered": state.peak_live_entries,
            }
        )
        decision = self.plan.decision
        if decision is not None:
            # Close the planner's feedback loop: the actual join
            # cardinality (one join_result charge per pair) and skyline
            # size flow back into the statistics store, so the next plan
            # over the same tables starts from observed numbers.
            decision.record_run_actuals(
                join_rows=self.clock.count("join_result"),
                skyline_size=self.results_emitted,
            )
        self._status = FINISHED
