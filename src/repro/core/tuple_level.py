"""Tuple-level processing of one output region (paper §III-B).

Runs the expensive join + map + dominance work for the region chosen by the
ordering policy, feeding results through the comparison-minimising
insertion path of :class:`~repro.core.progdetermine.ExecutionState`.
Implemented as a generator so results that become safely emittable *during*
the region's processing (via marking cascades) reach the caller
immediately.

Two implementations share the generator contract:

* the **scalar** path — the reference implementation: one hash-join probe,
  one mapping evaluation and one grid insertion per tuple, every dominance
  comparison charged individually;
* the **vectorized** path — accumulates partition-sized chunks of joined
  pairs, evaluates the mapping expressions columnarly
  (:meth:`~repro.query.smj.BoundQuery.map_rows_batch`) and inserts through
  the matrix kernels of :meth:`ExecutionState.insert_batch`, charging the
  clock in bulk.  Budgets and cancellation still work: the clock tripwire
  fires inside bulk charges, and because emissions are only drained (and
  yielded) between batches, any prefix produced before an interrupt is
  provably final.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from repro.core.output_grid import CellEntry
from repro.core.progdetermine import ExecutionState
from repro.core.regions import OutputRegion

#: Joined pairs accumulated before a vectorized flush.  Partition-pair
#: outputs smaller than this are processed as a single batch.
DEFAULT_BATCH_SIZE = 1024


def process_region(
    state: ExecutionState,
    region: OutputRegion,
    *,
    use_vectorized: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[CellEntry]:
    """Generate, map and insert the region's join results.

    Yields cell entries that became emittable while the region was being
    processed.  The caller completes the region (RegCount release) after
    the generator is exhausted.
    """
    if region.done:
        return
    if region.unmarked_covered == 0:
        # Every cell this region could populate is already dominated: the
        # look-ahead saved us the entire join (the §III-A payoff).
        state.clock.charge("discard")
        return

    state.active_region = region
    try:
        if use_vectorized:
            yield from _process_vectorized(state, region, batch_size)
        else:
            yield from _process_scalar(state, region)
    finally:
        state.active_region = None


def _join_sides(state: ExecutionState, region: OutputRegion):
    """Hash-join orientation: build on the smaller partition side."""
    bound = state.bound
    left_rows = region.left_partition.rows
    right_rows = region.right_partition.rows
    if len(left_rows) <= len(right_rows):
        return (
            left_rows, right_rows,
            bound.left_join_index, bound.right_join_index, True,
        )
    return (
        right_rows, left_rows,
        bound.right_join_index, bound.left_join_index, False,
    )


def _process_scalar(
    state: ExecutionState, region: OutputRegion
) -> Iterator[CellEntry]:
    bound = state.bound
    clock = state.clock
    build_rows, probe_rows, build_key, probe_key, build_is_left = _join_sides(
        state, region
    )

    table: dict = defaultdict(list)
    for row in build_rows:
        clock.charge("join_build")
        table[row[build_key]].append(row)

    for prow in probe_rows:
        clock.charge("join_probe")
        matches = table.get(prow[probe_key])
        if not matches:
            continue
        for brow in matches:
            clock.charge("join_result")
            if build_is_left:
                lrow, rrow = brow, prow
            else:
                lrow, rrow = prow, brow
            mapped = bound.map_pair(lrow, rrow)
            clock.charge("map")
            state.insert(bound.vector_of(mapped), lrow, rrow, mapped)
        emissions = state.drain_emissions()
        if emissions:
            yield from emissions


def _process_vectorized(
    state: ExecutionState, region: OutputRegion, batch_size: int
) -> Iterator[CellEntry]:
    bound = state.bound
    clock = state.clock
    build_rows, probe_rows, build_key, probe_key, build_is_left = _join_sides(
        state, region
    )

    table: dict = defaultdict(list)
    clock.charge("join_build", len(build_rows))
    for row in build_rows:
        table[row[build_key]].append(row)

    pend_l: list[tuple] = []
    pend_r: list[tuple] = []

    def flush() -> Iterator[CellEntry]:
        n = len(pend_l)
        clock.charge("join_result", n)
        mapped = bound.map_rows_batch(pend_l, pend_r)
        clock.charge("map", n)
        vectors = bound.vectors_of_batch(mapped)
        state.insert_batch(vectors, pend_l, pend_r, mapped)
        pend_l.clear()
        pend_r.clear()
        emissions = state.drain_emissions()
        if emissions:
            yield from emissions

    clock.charge("join_probe", len(probe_rows))
    for prow in probe_rows:
        matches = table.get(prow[probe_key])
        if not matches:
            continue
        if build_is_left:
            for brow in matches:
                pend_l.append(brow)
                pend_r.append(prow)
        else:
            for brow in matches:
                pend_l.append(prow)
                pend_r.append(brow)
        if len(pend_l) >= batch_size:
            yield from flush()
    if pend_l:
        yield from flush()
