"""Tuple-level processing of one output region (paper §III-B).

Runs the expensive join + map + dominance work for the region chosen by the
ordering policy, feeding results through the comparison-minimising
insertion path of :class:`~repro.core.progdetermine.ExecutionState`.
Implemented as a generator so results that become safely emittable *during*
the region's processing (via marking cascades) reach the caller
immediately.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from repro.core.output_grid import CellEntry
from repro.core.progdetermine import ExecutionState
from repro.core.regions import OutputRegion


def process_region(
    state: ExecutionState, region: OutputRegion
) -> Iterator[CellEntry]:
    """Generate, map and insert the region's join results.

    Yields cell entries that became emittable while the region was being
    processed.  The caller completes the region (RegCount release) after
    the generator is exhausted.
    """
    if region.done:
        return
    if region.unmarked_covered == 0:
        # Every cell this region could populate is already dominated: the
        # look-ahead saved us the entire join (the §III-A payoff).
        state.clock.charge("discard")
        return

    bound = state.bound
    clock = state.clock
    state.active_region = region
    try:
        left_rows = region.left_partition.rows
        right_rows = region.right_partition.rows

        # Hash join within the partition pair, building on the smaller side.
        if len(left_rows) <= len(right_rows):
            build_rows, probe_rows = left_rows, right_rows
            build_key = bound.left_join_index
            probe_key = bound.right_join_index
            build_is_left = True
        else:
            build_rows, probe_rows = right_rows, left_rows
            build_key = bound.right_join_index
            probe_key = bound.left_join_index
            build_is_left = False

        table: dict = defaultdict(list)
        for row in build_rows:
            clock.charge("join_build")
            table[row[build_key]].append(row)

        for prow in probe_rows:
            clock.charge("join_probe")
            matches = table.get(prow[probe_key])
            if not matches:
                continue
            for brow in matches:
                clock.charge("join_result")
                if build_is_left:
                    lrow, rrow = brow, prow
                else:
                    lrow, rrow = prow, brow
                mapped = bound.map_pair(lrow, rrow)
                clock.charge("map")
                state.insert(bound.vector_of(mapped), lrow, rrow, mapped)
            emissions = state.drain_emissions()
            if emissions:
                yield from emissions
    finally:
        state.active_region = None
