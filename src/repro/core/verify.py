"""Independent result verification.

``verify_results(bound, results)`` recomputes the query's true skyline with
a completely separate code path (hash join + block-nested-loops, none of
the ProgXe machinery) and checks a result stream against it.  Downstream
users can audit *any* algorithm — including their own — with one call; the
library's own agreement tests build on the same primitive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.join.hash_join import hash_join
from repro.join.predicates import EquiJoin
from repro.query.smj import BoundQuery, ResultTuple
from repro.skyline.bnl import bnl_skyline_entries
from repro.storage.sources.base import rows_of


@dataclass
class VerificationReport:
    """Outcome of checking a result stream against the true skyline."""

    expected: int
    received: int
    missing: list[tuple] = field(default_factory=list)  # false negatives
    unexpected: list[tuple] = field(default_factory=list)  # false positives
    duplicated: list[tuple] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the stream is exactly the skyline, without repeats."""
        return not self.missing and not self.unexpected and not self.duplicated

    def render(self) -> str:
        """Human-readable verdict."""
        if self.ok:
            return f"OK: {self.received} results match the true skyline exactly"
        lines = [
            f"MISMATCH: expected {self.expected}, received {self.received}",
            f"  false negatives (missing): {len(self.missing)}",
            f"  false positives (unexpected): {len(self.unexpected)}",
            f"  duplicated emissions: {len(self.duplicated)}",
        ]
        return "\n".join(lines)


def true_skyline_keys(bound: BoundQuery) -> set[tuple]:
    """The query's exact skyline keys via an independent evaluation path."""
    predicate = EquiJoin(bound.left_join_index, bound.right_join_index)
    candidates = []
    for lrow, rrow in hash_join(
        rows_of(bound.left_table), rows_of(bound.right_table), predicate
    ):
        mapped = bound.map_pair(lrow, rrow)
        candidates.append((bound.vector_of(mapped), (lrow, rrow)))
    return {payload for _, payload in bnl_skyline_entries(candidates)}


def verify_results(
    bound: BoundQuery, results: Iterable[ResultTuple]
) -> VerificationReport:
    """Check a (finished) result stream against the true skyline."""
    expected = true_skyline_keys(bound)
    seen: set[tuple] = set()
    duplicated = []
    unexpected = []
    count = 0
    for result in results:
        count += 1
        key = result.key()
        if key in seen:
            duplicated.append(key)
            continue
        seen.add(key)
        if key not in expected:
            unexpected.append(key)
    missing = sorted(
        expected - seen,
        key=lambda k: (str(k[0][0]), str(k[1][0])),
    )
    return VerificationReport(
        expected=len(expected),
        received=count,
        missing=list(missing),
        unexpected=unexpected,
        duplicated=duplicated,
    )
