"""The paper's contribution: the ProgXe progressive execution framework."""

from repro.core.benefit import progressive_count, region_benefit, region_cardinality
from repro.core.cost import kung_alpha, region_cost
from repro.core.elimination_graph import EliminationGraph
from repro.core.engine import ProgXeEngine
from repro.core.explain import (
    EstimateRow,
    ExecutionTrace,
    ExplainReport,
    PlanningReport,
    explain,
    explain_estimates,
    trace,
)
from repro.core.kernel import ExecutionKernel, KernelSnapshot, StepReport
from repro.core.plan import QueryPlan, default_input_cells, default_output_cells
from repro.core.verify import (
    VerificationReport,
    true_skyline_keys,
    verify_results,
)
from repro.core.lookahead import (
    build_output_grid,
    build_regions,
    eliminate_dominated_regions,
    premark_dominated_cells,
    run_lookahead,
)
from repro.core.output_grid import OutputCell, OutputGrid
from repro.core.progdetermine import ExecutionState
from repro.core.progorder import ProgOrder, RandomOrder
from repro.core.regions import OutputRegion
from repro.core.streaming import StreamingKernel
from repro.core.tuple_level import process_region
from repro.core.variants import (
    ALGORITHMS,
    PROGXE_VARIANTS,
    progxe,
    progxe_no_order,
    progxe_plus,
    progxe_plus_no_order,
)

__all__ = [
    "ALGORITHMS",
    "EliminationGraph",
    "EstimateRow",
    "ExecutionKernel",
    "ExecutionState",
    "ExecutionTrace",
    "ExplainReport",
    "KernelSnapshot",
    "PlanningReport",
    "QueryPlan",
    "StepReport",
    "StreamingKernel",
    "default_input_cells",
    "default_output_cells",
    "VerificationReport",
    "explain",
    "explain_estimates",
    "trace",
    "true_skyline_keys",
    "verify_results",
    "OutputCell",
    "OutputGrid",
    "OutputRegion",
    "PROGXE_VARIANTS",
    "ProgOrder",
    "ProgXeEngine",
    "RandomOrder",
    "build_output_grid",
    "build_regions",
    "eliminate_dominated_regions",
    "kung_alpha",
    "premark_dominated_cells",
    "process_region",
    "progressive_count",
    "progxe",
    "progxe_no_order",
    "progxe_plus",
    "progxe_plus_no_order",
    "region_benefit",
    "region_cardinality",
    "region_cost",
    "run_lookahead",
]
