"""Output regions: the abstraction level of the look-ahead phase.

A region ``R_{a,b}`` (paper notation, Table I) is the box of the output
space into which every join result of input partitions ``I^R_a`` and
``I^T_b`` must fall, obtained by mapping the partitions' attribute boxes
through the query's mapping functions with interval arithmetic.  All region
coordinates here are in *normalised* (minimisation) output space.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.storage.partition import InputPartition

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.output_grid import OutputCell


class OutputRegion:
    """One region of the mapped output space.

    Lifecycle flags:

    * ``guaranteed`` — the partition signatures *prove* at least one join
      result exists, enabling this region to prune others (§III-A),
    * ``discarded`` — the region is dominated (region-level elimination or
      all its covered cells got marked); its tuple-level processing is
      skipped entirely,
    * ``processed`` — tuple-level processing has completed.
    """

    __slots__ = (
        "rid",
        "left_partition",
        "right_partition",
        "lower",
        "upper",
        "expected_join",
        "guaranteed",
        "covered",
        "cell_min",
        "cell_max",
        "discarded",
        "processed",
        "unmarked_covered",
        "in_degree",
        "out_edges",
        "cardinality",
        "cost",
    )

    def __init__(
        self,
        rid: int,
        left_partition: InputPartition,
        right_partition: InputPartition,
        lower: tuple[float, ...],
        upper: tuple[float, ...],
        expected_join: float,
        guaranteed: bool,
    ) -> None:
        self.rid = rid
        self.left_partition = left_partition
        self.right_partition = right_partition
        self.lower = lower
        self.upper = upper
        self.expected_join = expected_join
        self.guaranteed = guaranteed
        self.covered: list["OutputCell"] = []
        self.cell_min: tuple[int, ...] = ()
        self.cell_max: tuple[int, ...] = ()
        self.discarded = False
        self.processed = False
        self.unmarked_covered = 0
        self.in_degree = 0
        self.out_edges: list[int] = []
        self.cardinality = 0.0
        self.cost = 1.0

    @property
    def done(self) -> bool:
        """Whether the region needs no further consideration."""
        return self.processed or self.discarded

    @property
    def partition_count(self) -> int:
        """Number of output partitions the region covers (paper Eq. 2)."""
        return len(self.covered)

    @property
    def join_cost_inputs(self) -> tuple[int, int]:
        """``(n_a, n_b)``: the input partition cardinalities."""
        return len(self.left_partition), len(self.right_partition)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "discarded" if self.discarded else (
            "processed" if self.processed else "pending"
        )
        return (
            f"OutputRegion(#{self.rid}, "
            f"{self.left_partition.coords}x{self.right_partition.coords}, "
            f"box={self.lower}->{self.upper}, {state})"
        )
