"""The elimination graph (EL-Graph, paper §IV-B).

A directed graph over output regions with an edge ``A -> B`` whenever some
output cell of ``A`` could — if populated during A's tuple-level
processing — partially or completely dominate ``B``.  Roots (no incoming
edges) are regions nobody can eliminate, hence the best candidates for
early processing; ProgOrder only ever ranks roots.

The edge test is a cell-coordinate box test: cells ``h ∈ A`` and ``g ∈ B``
with ``h + 1 <= g`` in every dimension exist iff
``A.cell_min + 1 <= B.cell_max`` everywhere (regions cover full coordinate
rectangles).  Mutual partial elimination produces cycles; a graph with
unprocessed regions but no roots is resolved by the ordering policy's
cycle-breaking fallback.
"""

from __future__ import annotations

import numpy as np

from repro.core.regions import OutputRegion
from repro.runtime.clock import VirtualClock


class EliminationGraph:
    """Incrementally maintained EL-Graph over surviving regions."""

    def __init__(self, regions: list[OutputRegion], clock: VirtualClock) -> None:
        self.regions = {r.rid: r for r in regions}
        self.clock = clock
        live = [r for r in regions if not r.discarded and r.covered]
        if live:
            self._build_edges(live)

    def _build_edges(self, live: list[OutputRegion]) -> None:
        cmin = np.array([r.cell_min for r in live], dtype=np.int64)
        cmax = np.array([r.cell_max for r in live], dtype=np.int64)
        self.clock.charge("graph_op", len(live))
        # could_eliminate[i, j]: region i has a cell strictly below some
        # cell of region j in every dimension.
        could = (cmin[:, None, :] + 1 <= cmax[None, :, :]).all(axis=2)
        np.fill_diagonal(could, False)
        for i, region in enumerate(live):
            targets = np.nonzero(could[i])[0]
            region.out_edges = [live[j].rid for j in targets]
            for j in targets:
                live[j].in_degree += 1

    # ------------------------------------------------------------------
    def roots(self) -> list[OutputRegion]:
        """Regions with no incoming edges that still need processing."""
        return [
            r
            for r in self.regions.values()
            if not r.done and r.in_degree == 0
        ]

    def remaining(self) -> list[OutputRegion]:
        """All regions still needing processing (roots or not)."""
        return [r for r in self.regions.values() if not r.done]

    def remove(self, region: OutputRegion) -> list[OutputRegion]:
        """Drop a processed/discarded node; return newly rootless regions.

        Mirrors Algorithm 1 lines 10–19: removing the node's outgoing edges
        may turn other regions into roots, which become candidates for the
        priority queue.
        """
        new_roots: list[OutputRegion] = []
        for target_id in region.out_edges:
            target = self.regions.get(target_id)
            if target is None:
                continue
            self.clock.charge("graph_op")
            target.in_degree -= 1
            if target.in_degree == 0 and not target.done:
                new_roots.append(target)
        region.out_edges = []
        return new_roots
