"""The ProgOrder cost model (paper §IV-C, Eqs. 3–7).

``Cost(R_{a,b}) = C_join + C_map + C_sky`` with

* ``C_join = n_a * n_b`` (Eq. 4, the pairwise join evaluation),
* ``C_map = sigma * n_a * n_b`` (Eq. 5, one map per join result; the
  signatures give the expected join size directly),
* ``C_sky = J * (CP_avg * s_avg) * log^alpha(CP_avg * s_avg)`` (Eqs. 6–7,
  Kung-style amortised comparison cost restricted to the comparable-cell
  cone), with ``alpha = 1`` for ``d <= 3`` and ``alpha = d - 2`` otherwise.
"""

from __future__ import annotations

import math

from repro.core.output_grid import OutputGrid
from repro.core.regions import OutputRegion


def kung_alpha(dimensions: int) -> int:
    """The exponent α of the average skyline comparison bound (§IV-C)."""
    if dimensions < 1:
        raise ValueError(f"dimensions must be >= 1, got {dimensions}")
    return 1 if dimensions <= 3 else dimensions - 2


def region_cost(
    region: OutputRegion, grid: OutputGrid, dimensions: int
) -> float:
    """Eqs. 3–7: estimated tuple-level processing cost of the region."""
    n_a, n_b = region.join_cost_inputs
    c_join = float(n_a * n_b)
    expected_join = region.expected_join
    c_map = expected_join

    covered = max(1, region.partition_count)
    cp_avg = grid.mean_cone_size()
    s_avg = max(1.0, expected_join / covered)
    window = cp_avg * s_avg
    alpha = kung_alpha(dimensions)
    log_term = math.log(window) ** alpha if window > 1.0 else 1.0
    c_sky = expected_join * window * log_term
    return c_join + c_map + c_sky
