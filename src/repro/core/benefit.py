"""The ProgOrder benefit model (paper §IV-B, Definition 2, Eqs. 1–2).

``Benefit(R_{a,b}) = ProgCount / PartitionCount * Cardinality`` where:

* ``Cardinality`` estimates the skyline results the region can produce —
  the Bentley/Buchta expected-maxima formula applied to the expected join
  cardinality of the region's input partitions (Eq. 1),
* ``ProgCount`` counts the region's covered cells that depend on *no other
  live region* to be releasable: every cell that could feed dominators into
  them is settled, or populated exclusively by this region (Definition 2 —
  cells "that can neither be eliminated nor have output dependencies to
  partitions belonging to other output regions").
"""

from __future__ import annotations

from typing import Mapping

from repro.core.regions import OutputRegion
from repro.skyline.estimate import expected_skyline_size


def region_cardinality(region: OutputRegion, dimensions: int) -> float:
    """Eq. 1: estimated skyline results the region can produce."""
    return expected_skyline_size(region.expected_join, dimensions)


def progressive_count(
    region: OutputRegion, regions_by_id: Mapping[int, OutputRegion]
) -> int:
    """Definition 2: externally independent, still-releasable covered cells."""
    rid = region.rid
    count = 0
    for cell in region.covered:
        if cell.marked or cell.emitted:
            continue
        independent = True
        for lc in cell.cone_lower:
            if lc.settled:
                continue
            # An unsettled potential-dominator cell blocks Oh unless every
            # live region feeding it is this very region.
            for other in lc.region_ids:
                if other != rid and not regions_by_id[other].done:
                    independent = False
                    break
            if not independent:
                break
        if independent:
            count += 1
    return count


def region_benefit(
    region: OutputRegion,
    regions_by_id: Mapping[int, OutputRegion],
    dimensions: int,
) -> float:
    """Eq. 2: progressiveness-weighted cardinality."""
    total = region.partition_count
    if total == 0:
        return 0.0
    if region.cardinality == 0.0:
        region.cardinality = region_cardinality(region, dimensions)
    return progressive_count(region, regions_by_id) / total * region.cardinality
