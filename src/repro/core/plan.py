"""Query planning: the pre-execution phases of the ProgXe framework.

A :class:`QueryPlan` is the materialised outcome of phases 0–2 of the
paper's pipeline (Figure 2) — everything that happens *before* the
ProgOrder / ProgDetermine loop touches a tuple:

0. *(ProgXe+ only)* skyline partial push-through pruning of both sources,
1. grid/quadtree partitioning of the inputs with join-value signatures,
2. output-space look-ahead: region construction, region- and cell-level
   domination pruning, dominance-cone wiring.

The plan also carries the execution knobs (ordering, vectorization,
verification, RNG seed) that the :class:`~repro.core.kernel.ExecutionKernel`
needs to drive phase 3/4, so ``ExecutionKernel(plan)`` is self-contained.
Building a plan charges the clock exactly as the former monolithic
``ProgXeEngine.run()`` prologue did; the split exists so that execution can
be suspended and resumed step by step without re-planning.

Phase 1 is the only *query-independent* phase: the input grids depend on
the table contents, the mapping attributes and the partitioner
configuration, never on preferences or conditions.  Passing a
:class:`~repro.cache.plan_cache.PlanCache` via ``build(cache=...)``
therefore lets concurrent plans over the same tables share one built grid
per side — a cache hit replaces the per-row partitioning charge with a
single ``cache_op`` — while look-ahead and push-through stay per-query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.baselines.pushthrough import prune_source
from repro.core.lookahead import run_lookahead
from repro.core.output_grid import OutputGrid
from repro.core.regions import OutputRegion
from repro.errors import QueryError
from repro.query.smj import BoundQuery
from repro.runtime.clock import VirtualClock
from repro.storage.grid import GridPartitioner
from repro.storage.quadtree import QuadTreePartitioner
from repro.storage.sources.base import DataSource
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.cache.plan_cache import PlanCache
    from repro.planner.choose import PlanDecision, Planner


@dataclass
class StreamSide:
    """One input side's delta-ingestion handle, retained by a follow plan.

    Everything the :class:`~repro.core.streaming.StreamingKernel` needs to
    absorb rows appended to ``table`` after planning: the partitioner that
    built ``structure`` (so delta passes use identical geometry), the cache
    the build went through (``None`` when the side bypassed it), and the
    source's :attr:`~repro.storage.sources.base.DataSource.cache_token` at
    build time — the cursor the first arrival poll resumes from.
    """

    table: DataSource
    attributes: tuple[str, ...]
    join_attribute: str
    alias: str
    partitioner: object
    structure: object
    cache: "PlanCache | None"
    token: tuple


def default_input_cells(source_dims: int) -> int:
    """Grid resolution aiming at a few dozen partitions per source."""
    if source_dims <= 1:
        return 8
    if source_dims == 2:
        return 4
    if source_dims == 3:
        return 3
    return 2


def default_output_cells(dimensions: int) -> int:
    """Output grid resolution by skyline dimensionality.

    Finer grids settle later (more interlocking cones) but discriminate
    better; 4 cells per dimension is the sweet spot measured for d >= 4 —
    3 per dimension leaves cones so coarse that emission collapses to the
    end of the run.
    """
    if dimensions <= 2:
        return 10
    if dimensions == 3:
        return 6
    return 4


@dataclass
class QueryPlan:
    """Phases 0–2 done: regions, grid, and the knobs for execution.

    ``prune_stats`` records push-through effects (``left_pruned`` /
    ``right_pruned``) so the engine's historical ``stats`` surface keeps
    reporting them.

    Example::

        plan = QueryPlan.build(bound, VirtualClock(), pushthrough=True)
        len(plan.regions)                    # surviving output regions
        kernel = ExecutionKernel(plan)       # plan is consumed (single-use)
    """

    bound: BoundQuery
    clock: VirtualClock
    regions: list[OutputRegion]
    grid: OutputGrid
    ordering: bool = True
    seed: int = 0
    use_vectorized: bool = True
    verify: bool = True
    prune_stats: dict[str, int] = field(default_factory=dict)
    #: Partition-cache outcome of this build: ``partition_hits`` /
    #: ``partition_misses`` per side served through a
    #: :class:`~repro.cache.plan_cache.PlanCache`.  Empty when no cache was
    #: offered (or both sides bypassed it after push-through pruning).
    cache_events: dict[str, int] = field(default_factory=dict)
    #: Set by the first :class:`~repro.core.kernel.ExecutionKernel` built
    #: over this plan.  Execution mutates the plan's regions and grid, so
    #: a second kernel would silently produce an empty result set; the
    #: kernel constructor raises instead.
    consumed: bool = False
    #: Per-side delta-ingestion handles, retained only when the plan was
    #: built with ``follow=True`` (streaming mode); ``None`` otherwise.
    stream_sides: "tuple[StreamSide, StreamSide] | None" = None
    #: Vectorized flush threshold for tuple-level processing; ``None``
    #: keeps :data:`~repro.core.tuple_level.DEFAULT_BATCH_SIZE`.
    batch_size: int | None = None
    #: The cost-based planner's :class:`~repro.planner.choose.PlanDecision`
    #: when the plan was built with ``planner=``; ``None`` otherwise.
    #: Carries every estimate plus the actuals recorded during build and
    #: at kernel finalize (the EXPLAIN estimate-vs-actual source).
    decision: "PlanDecision | None" = None

    @classmethod
    def build(
        cls,
        bound: BoundQuery,
        clock: VirtualClock | None = None,
        *,
        ordering: bool = True,
        pushthrough: bool = False,
        input_cells: int | None = None,
        output_cells: int | None = None,
        signature_kind: str = "exact",
        partitioning: str = "grid",
        leaf_capacity: int | None = None,
        seed: int = 0,
        verify: bool = True,
        use_vectorized: bool = True,
        cache: "PlanCache | None" = None,
        follow: bool = False,
        batch_size: int | None = None,
        planner: "Planner | None" = None,
    ) -> "QueryPlan":
        """Run phases 0–2 and return the finished plan.

        Parameters mirror :class:`~repro.core.engine.ProgXeEngine` (which
        validates them); planning charges partitioning and look-ahead work
        to ``clock``.  When ``cache`` is given, phase 1 is served through
        the shared :class:`~repro.cache.plan_cache.PlanCache`: a hit reuses
        the grid another plan already built (one ``cache_op`` charged
        instead of per-row partitioning work) and the outcome is recorded in
        the plan's :attr:`cache_events`.  Tables replaced by push-through
        pruning are always partitioned privately — they are fresh per-query
        objects no other plan can ever share.

        ``follow=True`` builds a *streaming* plan: the per-side delta
        handles (:class:`StreamSide`) are retained on the returned plan so
        a :class:`~repro.core.streaming.StreamingKernel` can keep absorbing
        appended rows after planning.  Incompatible with ``pushthrough``
        (pruning snapshots the inputs, severing them from the live source).

        ``planner`` hands knob selection to a cost-based
        :class:`~repro.planner.choose.Planner`: it fills every knob the
        caller left at its default (partitioner kind, grid granularity,
        vectorized batch size, filter push-down strategy) from statistics,
        records its estimates on the plan's :attr:`decision`, and the build
        writes the plan-time actuals back onto the decision for the EXPLAIN
        estimate-vs-actual report.
        """
        if follow and pushthrough:
            raise QueryError(
                "follow=True is incompatible with pushthrough: push-through "
                "pruning snapshots the inputs, so appended rows could never "
                "reach the running query"
            )
        clock = clock or VirtualClock()
        prune_stats: dict[str, int] = {}
        cache_events: dict[str, int] = {}

        decision = None
        if planner is not None:
            decision = planner.decide(
                bound,
                partitioning=partitioning,
                input_cells=input_cells,
                batch_size=batch_size,
                use_vectorized=use_vectorized,
            )
            partitioning = decision.partitioning
            input_cells = decision.input_cells
            batch_size = decision.batch_size
            if leaf_capacity is None:
                leaf_capacity = decision.leaf_capacity
            if decision.filter_strategy != "auto":
                rebind = getattr(bound, "with_filter_strategy", None)
                if rebind is not None:
                    bound = rebind(decision.filter_strategy)

        # Phase 0: (optional) skyline partial push-through.
        left_table, right_table = _pruned_tables(
            bound, clock, pushthrough, prune_stats
        )

        # Phase 1: input partitioning with join-value signatures.
        if partitioning == "quadtree":
            capacity = leaf_capacity or max(
                8, (len(left_table) + len(right_table)) // 32
            )
            partitioner_left = QuadTreePartitioner(
                capacity, signature_kind=signature_kind
            )
            partitioner_right = QuadTreePartitioner(
                capacity, signature_kind=signature_kind
            )
        else:
            k_left = input_cells or default_input_cells(len(bound.left_map_attrs))
            k_right = input_cells or default_input_cells(
                len(bound.right_map_attrs)
            )
            partitioner_left = GridPartitioner(k_left, signature_kind)
            partitioner_right = GridPartitioner(k_right, signature_kind)
        left_grid = _partition_side(
            partitioner_left, left_table, bound.left_map_attrs,
            bound.query.join.left_attr, bound.left_alias, clock, cache_events,
            # A pruned table is a fresh object; caching it would only pollute
            # the store with entries no later plan can hit.
            cache if left_table is bound.left_table else None,
        )
        right_grid = _partition_side(
            partitioner_right, right_table, bound.right_map_attrs,
            bound.query.join.right_attr, bound.right_alias, clock,
            cache_events,
            cache if right_table is bound.right_table else None,
        )

        stream_sides = None
        if follow:
            stream_sides = (
                StreamSide(
                    table=left_table,
                    attributes=tuple(bound.left_map_attrs),
                    join_attribute=bound.query.join.left_attr,
                    alias=bound.left_alias,
                    partitioner=partitioner_left,
                    structure=left_grid,
                    cache=cache if left_table is bound.left_table else None,
                    token=left_table.cache_token,
                ),
                StreamSide(
                    table=right_table,
                    attributes=tuple(bound.right_map_attrs),
                    join_attribute=bound.query.join.right_attr,
                    alias=bound.right_alias,
                    partitioner=partitioner_right,
                    structure=right_grid,
                    cache=cache if right_table is bound.right_table else None,
                    token=right_table.cache_token,
                ),
            )

        # Phase 2: output-space look-ahead.
        k_out = output_cells or default_output_cells(
            bound.skyline_dimension_count
        )
        regions, grid = run_lookahead(bound, left_grid, right_grid, k_out, clock)

        if decision is not None:
            decision.record_plan_actuals(
                rows_left=len(left_table),
                rows_right=len(right_table),
                left_partitions=left_grid.partition_count,
                right_partitions=right_grid.partition_count,
                regions=len(regions),
            )

        return cls(
            bound=bound,
            clock=clock,
            regions=regions,
            grid=grid,
            ordering=ordering,
            seed=seed,
            use_vectorized=use_vectorized,
            verify=verify,
            prune_stats=prune_stats,
            cache_events=cache_events,
            stream_sides=stream_sides,
            batch_size=batch_size,
            decision=decision,
        )


def _partition_side(
    partitioner,
    table: DataSource,
    attributes: tuple[str, ...],
    join_attribute: str,
    source: str,
    clock: VirtualClock,
    cache_events: dict[str, int],
    cache: "PlanCache | None",
):
    """Partition one input side, through the shared cache when offered.

    Charges ``partition_op`` per row on a build (the historical phase-1
    cost) and a single ``cache_op`` on a hit, recording the outcome in
    ``cache_events``.  A *patch* — the store held the partitioning over an
    older generation of a table that proves an append-only delta, and the
    cached structure was extended in place — charges one ``cache_op`` plus
    ``partition_op`` for just the appended rows, and records
    ``partition_patched``: planning cost scales with the delta, not the
    table.
    """
    if cache is None:
        grid = partitioner.partition(
            table, attributes, join_attribute, source=source
        )
        clock.charge("partition_op", len(table))
        return grid
    invalidations_before = cache.stats().invalidations
    grid, outcome, delta_rows = cache.get_or_partition_outcome(
        partitioner, table, attributes, join_attribute, source=source
    )
    if outcome == "hit":
        clock.charge("cache_op")
        cache_events["partition_hits"] = cache_events.get("partition_hits", 0) + 1
    elif outcome == "patched":
        clock.charge("cache_op")
        if delta_rows:
            clock.charge("partition_op", delta_rows)
        cache_events["partition_patched"] = (
            cache_events.get("partition_patched", 0) + 1
        )
    else:
        clock.charge("partition_op", len(table))
        cache_events["partition_misses"] = (
            cache_events.get("partition_misses", 0) + 1
        )
        # A miss that dropped a stale generation on the way (the source
        # could not prove an append-only delta) is the invalidation half
        # of the patched-vs-invalidated split.
        dropped = cache.stats().invalidations - invalidations_before
        if dropped:
            cache_events["partition_invalidated"] = (
                cache_events.get("partition_invalidated", 0) + dropped
            )
    return grid


def _pruned_tables(
    bound: BoundQuery,
    clock: VirtualClock,
    pushthrough: bool,
    prune_stats: dict[str, int],
) -> tuple[DataSource, DataSource]:
    """Apply push-through (ProgXe+) or pass the bound sources through.

    Pruned survivors are always rehoused in an in-memory :class:`Table`,
    whatever the original backend: the skyline-pruned set is a small
    materialised row list by construction.
    """
    left, right = bound.left_table, bound.right_table
    if not pushthrough:
        return left, right
    charge = clock.charger("dominance_cmp")
    left_prune = prune_source(bound, bound.left_alias, on_comparison=charge)
    right_prune = prune_source(bound, bound.right_alias, on_comparison=charge)
    if left_prune is not None:
        left = Table(left.name, left.schema, left_prune.kept_rows)
        prune_stats["left_pruned"] = left_prune.pruned_count
    if right_prune is not None:
        right = Table(right.name, right.schema, right_prune.kept_rows)
        prune_stats["right_pruned"] = right_prune.pruned_count
    return left, right
