"""The ProgXe progressive execution engine (paper §III, Figure 2).

Pipelines the framework phases (numbered as in :mod:`repro.core.plan`):

0. *(ProgXe+ only)* skyline partial push-through pruning of both sources,
1. grid/quadtree partitioning of the inputs with join-value signatures,
2. output-space look-ahead (regions, region/cell-level domination pruning,
   dominance cones, elimination graph),
3. the ProgOrder / ProgDetermine loop: pick a region, run tuple-level
   processing, release its coverage, emit every output cell that became
   provably final — repeated until no region remains.

Since the kernel split, the engine is a thin façade over two explicit
layers: :meth:`ProgXeEngine.plan` runs phases 0–2 and returns a
:class:`~repro.core.plan.QueryPlan`; :meth:`ProgXeEngine.kernel` wraps the
plan in a resumable :class:`~repro.core.kernel.ExecutionKernel` whose
``step()`` performs one region at a time (the unit the multi-query
scheduler interleaves).  ``run()`` is a compatibility wrapper over
``kernel().drain()`` — a generator yielding
:class:`~repro.query.smj.ResultTuple` objects the moment they are safe;
progressive correctness (no false positives) and completeness (no drops)
remain engine invariants, verified at the end of every run unless disabled.

An engine executes **once**: its clock, stats and execution state describe
a single run.  Requesting a second kernel (or iterating ``run()`` twice)
raises :class:`~repro.errors.ExecutionError` instead of silently
re-executing the phases and corrupting ``stats``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.kernel import ExecutionKernel
from repro.core.plan import QueryPlan
from repro.errors import ExecutionError
from repro.query.smj import BoundQuery, ResultTuple
from repro.runtime.clock import VirtualClock
from repro.storage.signatures import SIGNATURE_KINDS

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.cache.plan_cache import PlanCache
    from repro.planner.choose import PlanDecision, Planner


class ProgXeEngine:
    """Progressive SMJ evaluation: the paper's contribution.

    Example::

        engine = ProgXeEngine(workload.bound(), pushthrough=True)
        for result in engine.run():      # provably final, the moment known
            print(result.outputs)
        engine.stats["regions_processed"]

    ``cache`` accepts a shared :class:`~repro.cache.plan_cache.PlanCache`;
    planning then reuses input partitionings other engines over the same
    tables already built (sessions pass their own cache automatically).
    """

    def __init__(
        self,
        bound: BoundQuery,
        clock: VirtualClock | None = None,
        *,
        ordering: bool = True,
        pushthrough: bool = False,
        input_cells: int | None = None,
        output_cells: int | None = None,
        signature_kind: str = "exact",
        partitioning: str = "grid",
        leaf_capacity: int | None = None,
        seed: int = 0,
        verify: bool = True,
        use_vectorized: bool = True,
        follow: bool = False,
        cache: "PlanCache | None" = None,
        workers: int = 1,
        batch_size: int | None = None,
        planner: "Planner | None" = None,
    ) -> None:
        if partitioning not in ("grid", "quadtree"):
            raise ValueError(
                f"partitioning must be 'grid' or 'quadtree', got {partitioning!r}"
            )
        if signature_kind not in SIGNATURE_KINDS:
            raise ValueError(
                f"signature_kind must be one of {SIGNATURE_KINDS}, "
                f"got {signature_kind!r}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if follow and pushthrough:
            raise ValueError(
                "follow=True is incompatible with pushthrough: push-through "
                "pruning snapshots the inputs, so appended rows could never "
                "reach the running query"
            )
        if follow and workers > 1:
            raise ValueError(
                "follow=True is incompatible with workers > 1: sharded "
                "execution snapshots the inputs into per-worker columnar "
                "slices"
            )
        self.bound = bound
        self.clock = clock or VirtualClock()
        self.ordering = ordering
        self.pushthrough = pushthrough
        self.signature_kind = signature_kind
        self.partitioning = partitioning
        self.leaf_capacity = leaf_capacity
        self.seed = seed
        self.verify = verify
        self.use_vectorized = use_vectorized
        self.follow = follow
        self.input_cells = input_cells
        self.output_cells = output_cells
        self.cache = cache
        self.batch_size = batch_size
        self.planner = planner
        if workers > 1:
            from repro.parallel.plan import resolve_workers

            # Library policy allows oversubscription (determinism tests
            # legitimately run more workers than cores); only an
            # unavailable start method degrades to the solo kernel here.
            self.workers, self.worker_fallback = resolve_workers(workers)
        else:
            self.workers, self.worker_fallback = 1, None
        self._shard = None
        base = "ProgXe+" if pushthrough else "ProgXe"
        self.name = base if ordering else f"{base} (No-Order)"
        # Populated during execution for inspection/tests.
        self.stats: dict[str, float | int] = {}
        self.state = None
        self._plan: QueryPlan | None = None
        self._kernel: ExecutionKernel | None = None

    @classmethod
    def from_config(
        cls,
        bound: BoundQuery,
        clock: VirtualClock | None = None,
        config=None,
    ) -> "ProgXeEngine":
        """Build an engine from an :class:`~repro.session.EngineConfig`.

        ``config`` may also be a preset name (see
        :data:`~repro.session.config.PRESETS`); ``None`` means defaults.
        """
        from repro.session.config import EngineConfig

        if config is None:
            config = EngineConfig()
        elif isinstance(config, str):
            config = EngineConfig.preset(config)
        kwargs = config.engine_kwargs()
        if config.planner:
            from repro.planner.choose import Planner

            kwargs["planner"] = Planner()
        return cls(bound, clock, **kwargs)

    # ------------------------------------------------------------------
    # the plan / kernel layering
    # ------------------------------------------------------------------
    def plan(self) -> QueryPlan:
        """Run phases 0–2 (push-through, partitioning, look-ahead).

        Planning charges the engine's clock, so the result is cached:
        repeated calls — including the implicit one inside :meth:`kernel`
        — return the same plan instead of re-running the phases and
        double-charging the shared clock.
        """
        if self._plan is None:
            self._plan = self._build_plan()
        return self._plan

    def _build_plan(self) -> QueryPlan:
        plan_bound = self.bound
        cache = self.cache
        if self.workers > 1:
            from repro.parallel.plan import prepare_shard_context

            self._shard = prepare_shard_context(self.bound)
            plan_bound = self._shard.bound
            if self._shard.spilled:
                # Spilled sources are private scratch files: caching their
                # partitionings would pin PlanCache entries to directories
                # the kernel deletes on finalize.
                cache = None
        return QueryPlan.build(
            plan_bound,
            self.clock,
            ordering=self.ordering,
            pushthrough=self.pushthrough,
            input_cells=self.input_cells,
            output_cells=self.output_cells,
            signature_kind=self.signature_kind,
            partitioning=self.partitioning,
            leaf_capacity=self.leaf_capacity,
            seed=self.seed,
            verify=self.verify,
            use_vectorized=self.use_vectorized,
            cache=cache,
            follow=self.follow,
            batch_size=self.batch_size,
            planner=self.planner,
        )

    @property
    def cache_events(self) -> dict[str, int]:
        """Partition-cache outcome of this engine's (lazy) planning.

        ``{"partition_hits": ..., "partition_misses": ...}`` once the plan
        was built through a shared cache; empty before planning or when no
        cache was configured.
        """
        if self._plan is None:
            return {}
        return dict(self._plan.cache_events)

    @property
    def plan_decision(self) -> "PlanDecision | None":
        """The cost-based planner's decision for this engine's plan.

        ``None`` before planning or when the engine was built without a
        ``planner``.  After a full run the decision also carries the
        execution actuals (join cardinality, skyline size) next to the
        planner's estimates — the EXPLAIN estimate-vs-actual source.
        """
        if self._plan is None:
            return None
        return self._plan.decision

    def kernel(self) -> ExecutionKernel:
        """Plan the query and return its resumable execution kernel.

        The kernel writes into this engine's ``stats`` dict and exposes the
        live :class:`~repro.core.progdetermine.ExecutionState` as
        ``engine.state``, so existing inspection surfaces keep working.
        One kernel per engine: a second request raises
        :class:`~repro.errors.ExecutionError` (re-running the phases would
        corrupt ``stats`` and double-charge the clock).
        """
        if self._kernel is not None:
            raise ExecutionError(
                f"{self.name} engine has already been executed; construct a "
                "new engine (or keep stepping the existing kernel) instead "
                "of iterating run() twice"
            )
        plan = self.plan()
        if self.follow:
            from repro.core.streaming import StreamingKernel

            kernel: ExecutionKernel = StreamingKernel(
                plan, stats_sink=self.stats
            )
        elif self._shard is not None:
            from repro.parallel.sharded import ShardedKernel

            kernel = ShardedKernel(
                plan, self._shard, workers=self.workers,
                stats_sink=self.stats,
            )
        else:
            kernel = ExecutionKernel(plan, stats_sink=self.stats)
        self._kernel = kernel
        self.state = kernel.state
        return kernel

    @property
    def execution_kernel(self) -> ExecutionKernel | None:
        """The kernel created for this engine's (single) execution, if any."""
        return self._kernel

    def run(self) -> Iterator[ResultTuple]:
        """Execute progressively; results yield the moment they are final.

        Compatibility wrapper: equivalent to ``self.kernel().drain()``.
        Planning happens lazily on the first pull, exactly as the
        historical monolithic generator did.
        """
        yield from self.kernel().drain()
