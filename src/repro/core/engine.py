"""The ProgXe progressive execution engine (paper §III, Figure 2).

Pipelines the four framework phases:

1. *(ProgXe+ only)* skyline partial push-through pruning of both sources,
2. grid partitioning of the inputs with join-value signatures,
3. output-space look-ahead (regions, region/cell-level domination pruning,
   dominance cones, elimination graph),
4. the ProgOrder / ProgDetermine loop: pick a region, run tuple-level
   processing, release its coverage, emit every output cell that became
   provably final — repeated until no region remains.

``run()`` is a generator yielding :class:`~repro.query.smj.ResultTuple`
objects the moment they are safe; progressive correctness (no false
positives) and completeness (no drops) are engine invariants, verified at
the end of every run unless disabled.
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.pushthrough import prune_source
from repro.core.benefit import region_benefit
from repro.core.cost import region_cost
from repro.core.elimination_graph import EliminationGraph
from repro.core.lookahead import run_lookahead
from repro.core.progdetermine import ExecutionState
from repro.core.progorder import ProgOrder, RandomOrder
from repro.core.tuple_level import process_region
from repro.query.smj import BoundQuery, ResultTuple
from repro.runtime.clock import VirtualClock
from repro.storage.grid import GridPartitioner
from repro.storage.quadtree import QuadTreePartitioner
from repro.storage.signatures import SIGNATURE_KINDS
from repro.storage.table import Table


def _default_input_cells(source_dims: int) -> int:
    """Grid resolution aiming at a few dozen partitions per source."""
    if source_dims <= 1:
        return 8
    if source_dims == 2:
        return 4
    if source_dims == 3:
        return 3
    return 2


def _default_output_cells(dimensions: int) -> int:
    """Output grid resolution by skyline dimensionality.

    Finer grids settle later (more interlocking cones) but discriminate
    better; 4 cells per dimension is the sweet spot measured for d >= 4 —
    3 per dimension leaves cones so coarse that emission collapses to the
    end of the run.
    """
    if dimensions <= 2:
        return 10
    if dimensions == 3:
        return 6
    return 4


class ProgXeEngine:
    """Progressive SMJ evaluation: the paper's contribution."""

    def __init__(
        self,
        bound: BoundQuery,
        clock: VirtualClock | None = None,
        *,
        ordering: bool = True,
        pushthrough: bool = False,
        input_cells: int | None = None,
        output_cells: int | None = None,
        signature_kind: str = "exact",
        partitioning: str = "grid",
        leaf_capacity: int | None = None,
        seed: int = 0,
        verify: bool = True,
        use_vectorized: bool = True,
    ) -> None:
        if partitioning not in ("grid", "quadtree"):
            raise ValueError(
                f"partitioning must be 'grid' or 'quadtree', got {partitioning!r}"
            )
        if signature_kind not in SIGNATURE_KINDS:
            raise ValueError(
                f"signature_kind must be one of {SIGNATURE_KINDS}, "
                f"got {signature_kind!r}"
            )
        self.bound = bound
        self.clock = clock or VirtualClock()
        self.ordering = ordering
        self.pushthrough = pushthrough
        self.signature_kind = signature_kind
        self.partitioning = partitioning
        self.leaf_capacity = leaf_capacity
        self.seed = seed
        self.verify = verify
        self.use_vectorized = use_vectorized
        self.input_cells = input_cells
        self.output_cells = output_cells
        base = "ProgXe+" if pushthrough else "ProgXe"
        self.name = base if ordering else f"{base} (No-Order)"
        # Populated during run() for inspection/tests.
        self.stats: dict[str, float | int] = {}
        self.state: ExecutionState | None = None

    @classmethod
    def from_config(
        cls,
        bound: BoundQuery,
        clock: VirtualClock | None = None,
        config=None,
    ) -> "ProgXeEngine":
        """Build an engine from an :class:`~repro.session.EngineConfig`.

        ``config`` may also be a preset name (see
        :data:`~repro.session.config.PRESETS`); ``None`` means defaults.
        """
        from repro.session.config import EngineConfig

        if config is None:
            config = EngineConfig()
        elif isinstance(config, str):
            config = EngineConfig.preset(config)
        return cls(bound, clock, **config.engine_kwargs())

    # ------------------------------------------------------------------
    def _pruned_tables(self) -> tuple[Table, Table]:
        """Apply push-through (ProgXe+) or pass the bound tables through."""
        bound = self.bound
        left, right = bound.left_table, bound.right_table
        if not self.pushthrough:
            return left, right
        charge = self.clock.charger("dominance_cmp")
        left_prune = prune_source(bound, bound.left_alias, on_comparison=charge)
        right_prune = prune_source(bound, bound.right_alias, on_comparison=charge)
        if left_prune is not None:
            left = Table(left.name, left.schema, left_prune.kept_rows)
            self.stats["left_pruned"] = left_prune.pruned_count
        if right_prune is not None:
            right = Table(right.name, right.schema, right_prune.kept_rows)
            self.stats["right_pruned"] = right_prune.pruned_count
        return left, right

    def run(self) -> Iterator[ResultTuple]:
        bound = self.bound
        clock = self.clock

        # Phase 0/1: (optional) push-through, then input partitioning.
        left_table, right_table = self._pruned_tables()
        if self.partitioning == "quadtree":
            capacity = self.leaf_capacity or max(
                8, (len(left_table) + len(right_table)) // 32
            )
            partitioner_left = QuadTreePartitioner(
                capacity, signature_kind=self.signature_kind
            )
            partitioner_right = QuadTreePartitioner(
                capacity, signature_kind=self.signature_kind
            )
        else:
            k_left = self.input_cells or _default_input_cells(
                len(bound.left_map_attrs)
            )
            k_right = self.input_cells or _default_input_cells(
                len(bound.right_map_attrs)
            )
            partitioner_left = GridPartitioner(k_left, self.signature_kind)
            partitioner_right = GridPartitioner(k_right, self.signature_kind)
        left_grid = partitioner_left.partition(
            left_table, bound.left_map_attrs, bound.query.join.left_attr,
            source=bound.left_alias,
        )
        right_grid = partitioner_right.partition(
            right_table, bound.right_map_attrs, bound.query.join.right_attr,
            source=bound.right_alias,
        )
        clock.charge("partition_op", len(left_table) + len(right_table))

        # Phase 2: output-space look-ahead.
        k_out = self.output_cells or _default_output_cells(
            bound.skyline_dimension_count
        )
        regions, grid = run_lookahead(bound, left_grid, right_grid, k_out, clock)

        state = ExecutionState(bound, regions, grid, clock)
        self.state = state
        graph = EliminationGraph(regions, clock)
        regions_by_id = state.regions
        dims = bound.skyline_dimension_count

        def rank_fn(region) -> float:
            benefit = region_benefit(region, regions_by_id, dims)
            cost = region_cost(region, grid, dims)
            return benefit / cost if cost > 0 else benefit

        if self.ordering:
            policy = ProgOrder(graph, rank_fn, clock)
        else:
            policy = RandomOrder(graph, rank_fn, clock, seed=self.seed)

        # Cells fully released during look-ahead are already final (empty).
        for cell in grid.cells.values():
            if cell.settled and not cell.marked:
                state._try_emit(cell)
        for vector, lrow, rrow, mapped in state.drain_emissions():
            yield bound.make_result(lrow, rrow, mapped)

        # Phase 3/4: the ProgOrder / ProgDetermine loop.
        processed = 0
        while True:
            region = policy.next_region()
            if region is None:
                break
            if region.done:
                continue
            for vector, lrow, rrow, mapped in process_region(
                state, region, use_vectorized=self.use_vectorized
            ):
                yield bound.make_result(lrow, rrow, mapped)
            region.processed = True
            processed += 1
            state.complete_region(region)
            for vector, lrow, rrow, mapped in state.drain_emissions():
                yield bound.make_result(lrow, rrow, mapped)
            policy.on_region_done(region)
            for discarded in state.drain_discarded():
                policy.on_region_done(discarded)

        if self.verify:
            state.verify_drained()

        self.stats.update(
            {
                "regions_total": len(regions),
                "regions_processed": processed,
                "regions_discarded": sum(1 for r in regions if r.discarded),
                "active_cells": grid.active_count,
                "marked_cells": grid.marked_count,
                "inserted": state.inserted,
                "dominated_on_arrival": state.dominated_on_arrival,
                "discarded_on_arrival": state.discarded_on_arrival,
                "peak_buffered": state.peak_live_entries,
            }
        )
