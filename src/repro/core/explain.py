"""Execution tracing and EXPLAIN output for the ProgXe engine.

``explain(bound)`` dry-runs the look-ahead and ordering phases without any
tuple-level work and renders what the engine *would* do: partition counts,
surviving regions with their benefit/cost/rank, the EL-Graph root set and
the first processing decisions.  ``trace(engine)`` wraps a real run and
records the region processing order with per-region emission counts.

Both exist for the reasons EXPLAIN exists in any query engine: debugging
unexpected plans, understanding why output is late, and teaching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.benefit import region_benefit
from repro.core.cost import region_cost
from repro.core.elimination_graph import EliminationGraph
from repro.core.engine import ProgXeEngine
from repro.core.plan import (
    default_input_cells as _default_input_cells,
    default_output_cells as _default_output_cells,
)
from repro.core.lookahead import run_lookahead
from repro.query.smj import BoundQuery
from repro.runtime.clock import VirtualClock
from repro.storage.grid import GridPartitioner


@dataclass
class RegionPlan:
    """One region's planning numbers."""

    rid: int
    left_coords: tuple
    right_coords: tuple
    rows: tuple[int, int]
    expected_join: float
    covered_cells: int
    discarded: bool
    is_root: bool
    benefit: float
    cost: float
    rank: float


@dataclass
class ExplainReport:
    """The plan-level view of a ProgXe execution."""

    left_partitions: int
    right_partitions: int
    regions_total: int
    regions_discarded: int
    active_cells: int
    marked_cells: int
    roots: int
    region_plans: list[RegionPlan] = field(default_factory=list)

    def render(self, *, top: int = 10) -> str:
        """Human-readable EXPLAIN text."""
        lines = [
            "ProgXe plan",
            f"  input partitions: {self.left_partitions} x {self.right_partitions}",
            f"  output regions:   {self.regions_total} "
            f"({self.regions_discarded} eliminated by look-ahead)",
            f"  output cells:     {self.active_cells} active, "
            f"{self.marked_cells} marked non-contributing",
            f"  EL-Graph roots:   {self.roots}",
            "",
            f"  top {top} regions by rank (benefit/cost):",
            f"  {'rank':>10}  {'benefit':>9}  {'cost':>10}  {'cells':>5}  "
            f"{'join':>6}  pair",
        ]
        ranked = sorted(
            (p for p in self.region_plans if not p.discarded),
            key=lambda p: p.rank,
            reverse=True,
        )
        for plan in ranked[:top]:
            root_mark = "*" if plan.is_root else " "
            lines.append(
                f" {root_mark}{plan.rank:>10.4f}  {plan.benefit:>9.2f}  "
                f"{plan.cost:>10.0f}  {plan.covered_cells:>5}  "
                f"{plan.expected_join:>6.0f}  "
                f"{list(plan.left_coords)}x{list(plan.right_coords)}"
            )
        lines.append("  (* = current EL-Graph root)")
        return "\n".join(lines)


def explain(
    bound: BoundQuery,
    *,
    input_cells: int | None = None,
    output_cells: int | None = None,
    signature_kind: str = "exact",
) -> ExplainReport:
    """Plan-only dry run: look-ahead + ranking, no tuple-level processing."""
    clock = VirtualClock()
    k_left = input_cells or _default_input_cells(len(bound.left_map_attrs))
    k_right = input_cells or _default_input_cells(len(bound.right_map_attrs))
    left_grid = GridPartitioner(k_left, signature_kind).partition(
        bound.left_table, bound.left_map_attrs, bound.query.join.left_attr,
        source=bound.left_alias,
    )
    right_grid = GridPartitioner(k_right, signature_kind).partition(
        bound.right_table, bound.right_map_attrs, bound.query.join.right_attr,
        source=bound.right_alias,
    )
    k_out = output_cells or _default_output_cells(bound.skyline_dimension_count)
    regions, grid = run_lookahead(bound, left_grid, right_grid, k_out, clock)
    graph = EliminationGraph(regions, clock)
    by_id = {r.rid: r for r in regions}
    dims = bound.skyline_dimension_count
    roots = {r.rid for r in graph.roots()}

    plans = []
    for region in regions:
        if region.discarded:
            benefit = cost = rank = 0.0
        else:
            benefit = region_benefit(region, by_id, dims)
            cost = region_cost(region, grid, dims)
            rank = benefit / cost if cost > 0 else benefit
        plans.append(
            RegionPlan(
                rid=region.rid,
                left_coords=region.left_partition.coords,
                right_coords=region.right_partition.coords,
                rows=region.join_cost_inputs,
                expected_join=region.expected_join,
                covered_cells=region.partition_count,
                discarded=region.discarded,
                is_root=region.rid in roots,
                benefit=benefit,
                cost=cost,
                rank=rank,
            )
        )
    return ExplainReport(
        left_partitions=left_grid.partition_count,
        right_partitions=right_grid.partition_count,
        regions_total=len(regions),
        regions_discarded=sum(1 for r in regions if r.discarded),
        active_cells=grid.active_count,
        marked_cells=grid.marked_count,
        roots=len(roots),
        region_plans=plans,
    )


@dataclass
class TraceEvent:
    """One region's processing record in a traced run."""

    order: int
    rid: int
    emitted_during: int
    emitted_after: int
    vtime_start: float
    vtime_end: float


@dataclass
class ExecutionTrace:
    """Region-granularity trace of a real engine run."""

    events: list[TraceEvent] = field(default_factory=list)
    total_results: int = 0
    #: Emissions released by ProgDetermine between regions before any
    #: region was traced (e.g. cells freed purely by look-ahead).
    unattributed: int = 0

    def render(self, *, limit: int = 20) -> str:
        lines = [
            f"{'#':>4}  {'region':>6}  {'t_start':>10}  {'t_end':>10}  "
            f"{'emit@run':>8}  {'emit@done':>9}"
        ]
        for e in self.events[:limit]:
            lines.append(
                f"{e.order:>4}  {e.rid:>6}  {e.vtime_start:>10.0f}  "
                f"{e.vtime_end:>10.0f}  {e.emitted_during:>8}  "
                f"{e.emitted_after:>9}"
            )
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more regions")
        lines.append(f"total results: {self.total_results}")
        return "\n".join(lines)


@dataclass
class EstimateRow:
    """One metric's estimate-vs-actual comparison."""

    metric: str
    estimated: float
    actual: float | None

    @property
    def relative_error(self) -> float | None:
        """``(estimated - actual) / max(|actual|, 1)``; ``None`` pre-run."""
        if self.actual is None:
            return None
        return (self.estimated - self.actual) / max(abs(self.actual), 1.0)


@dataclass
class PlanningReport:
    """The cost-based EXPLAIN: what the planner chose, and how well.

    Produced by :func:`explain_estimates`, which plans **and executes**
    the query with a planner so every estimated quantity has an observed
    counterpart.  ``rows`` carry the relative error of each estimate —
    the visibility that makes mis-estimates debuggable and testable.

    Example::

        report = explain_estimates(workload.bound())
        print(report.render())
        report.to_dict()["rows"]    # machine-readable estimate/actual pairs
    """

    partitioning: str
    input_cells: int
    batch_size: int
    filter_strategy: str
    workers_suggested: int
    corrected: bool
    pinned: tuple[str, ...]
    rows: list[EstimateRow] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable estimate-vs-actual table."""
        lines = [
            "cost-based plan",
            f"  partitioning:    {self.partitioning}",
            f"  input cells:     {self.input_cells}",
            f"  batch size:      {self.batch_size}",
            f"  filter strategy: {self.filter_strategy}",
            f"  workers hint:    {self.workers_suggested}",
            f"  feedback:        "
            f"{'corrected by prior run' if self.corrected else 'cold (first run)'}",
        ]
        if self.pinned:
            lines.append(f"  pinned by caller: {', '.join(self.pinned)}")
        lines += [
            "",
            f"  {'metric':<18} {'estimated':>12} {'actual':>12} {'rel.err':>9}",
        ]
        for row in self.rows:
            actual = "-" if row.actual is None else f"{row.actual:>12.0f}"
            error = (
                "-"
                if row.relative_error is None
                else f"{row.relative_error:>+8.1%}"
            )
            lines.append(
                f"  {row.metric:<18} {row.estimated:>12.1f} {actual:>12} "
                f"{error:>9}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready form (the CLI's ``--format json``)."""
        return {
            "partitioning": self.partitioning,
            "input_cells": self.input_cells,
            "batch_size": self.batch_size,
            "filter_strategy": self.filter_strategy,
            "workers_suggested": self.workers_suggested,
            "corrected": self.corrected,
            "pinned": list(self.pinned),
            "rows": [
                {
                    "metric": row.metric,
                    "estimated": row.estimated,
                    "actual": row.actual,
                    "relative_error": row.relative_error,
                }
                for row in self.rows
            ],
        }


def explain_estimates(
    bound: BoundQuery,
    *,
    planner=None,
    config=None,
) -> PlanningReport:
    """Plan with the cost-based planner, execute, compare estimates.

    Runs ``bound`` to completion through a planner-driven engine and
    returns the :class:`PlanningReport` pairing every planner estimate
    (rows scanned, partition fanout, output regions, join cardinality,
    skyline size) with the observed value and its relative error.

    ``planner`` defaults to a fresh :class:`~repro.planner.choose.Planner`
    (pass a session's to reuse its statistics); ``config`` is an optional
    :class:`~repro.session.EngineConfig` whose non-default knobs are
    honoured as pinned.

    Example::

        report = explain_estimates(workload.bound())
        {r.metric: r.relative_error for r in report.rows}
    """
    from repro.planner.choose import Planner

    if planner is None:
        planner = Planner()
    kwargs = {}
    if config is not None:
        kwargs = config.engine_kwargs()
        kwargs.pop("follow", None)
    engine = ProgXeEngine(bound, planner=planner, **kwargs)
    for _ in engine.run():
        pass
    decision = engine.plan_decision
    assert decision is not None  # planner-driven by construction
    return PlanningReport(
        partitioning=decision.partitioning,
        input_cells=decision.input_cells,
        batch_size=decision.batch_size,
        filter_strategy=decision.filter_strategy,
        workers_suggested=decision.workers,
        corrected=decision.estimates.corrected,
        pinned=decision.pinned,
        rows=[
            EstimateRow(metric=metric, estimated=estimated, actual=actual)
            for metric, estimated, actual in decision.comparison()
        ],
    )


def trace(engine: ProgXeEngine) -> ExecutionTrace:
    """Run ``engine`` to completion, recording the region schedule.

    Works by instrumenting the engine's policy choice points: we wrap the
    generator and attribute each emission to the region being processed at
    that moment (via the execution state's ``active_region``).
    """
    out = ExecutionTrace()
    clock = engine.clock
    current: TraceEvent | None = None
    order = 0
    for result in engine.run():
        out.total_results += 1
        state = engine.state
        active = state.active_region if state is not None else None
        if active is not None:
            if current is None or current.rid != active.rid:
                if current is not None:
                    current.vtime_end = clock.now()
                order += 1
                current = TraceEvent(
                    order=order, rid=active.rid,
                    emitted_during=0, emitted_after=0,
                    vtime_start=clock.now(), vtime_end=clock.now(),
                )
                out.events.append(current)
            current.emitted_during += 1
        elif current is not None:
            current.emitted_after += 1
            current.vtime_end = clock.now()
        else:
            out.unattributed += 1
    if current is not None:
        current.vtime_end = clock.now()
    return out
