"""Streaming ingestion: executing a query while its inputs keep growing.

The paper's pipeline assumes the inputs are fixed at planning time.  This
module relaxes that to **append-only arrival**: a follow query plans over
the rows present at submission and then keeps absorbing rows appended to
either source while it runs, producing exactly the result set a one-shot
query over the final table contents would — the differential-replay
contract ``tests/test_streaming.py`` checks property-style.

:class:`StreamingKernel` extends the step machine with one new scheduling
unit, the *arrival poll* (:data:`~repro.core.kernel.STEP_INGEST`): whenever
the region queue runs dry while the arrival window is open, the kernel
compares each side's :attr:`~repro.storage.sources.base.DataSource.cache_token`
against the cursor of its last absorption and, on growth, extends the
side's input partitioning in place (through the shared
:class:`~repro.cache.plan_cache.PlanCache` when the build went through one,
so concurrent queries keep patching a single structure).  The fresh delta
partitions generate join work for exactly the new pairs —
``ΔL x (R ∪ ΔR)`` and ``L x ΔR`` — as new output regions wired into the
existing output grid, elimination graph and ordering policy.

Progressive safety under arrival needs two amendments to ProgDetermine:

* **Emission hold** — a settled cell is no longer provably final: a later
  arrival can create a region covering it again (the kernel *reopens* it,
  restoring RegCount and the cone's pending counts).  All emissions are
  therefore buffered until :meth:`StreamingKernel.close_ingest` ends the
  window and the last region completes, at which point one sweep
  (:meth:`~repro.core.progdetermine.ExecutionState.release_emissions`)
  emits everything at once.
* **Careful marking** — delta rows outside the frozen input-grid domain
  clamp into edge partitions, so a mapped vector may exceed its output
  cell's box; cell-granularity marking switches to full dominance tests
  against the target cell's lower corner
  (:attr:`~repro.core.progdetermine.ExecutionState.careful_marking`).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.kernel import (
    STEP_BOOTSTRAP,
    STEP_INGEST,
    STEP_REGION,
    ExecutionKernel,
    _StepBoundary,
)
from repro.core.output_grid import OutputCell
from repro.core.plan import QueryPlan, StreamSide
from repro.core.regions import OutputRegion
from repro.errors import ExecutionError
from repro.query.smj import ResultTuple
from repro.storage.partition import InputPartition
from repro.storage.sources.base import delta_start_row


class StreamingKernel(ExecutionKernel):
    """Step machine for follow queries over append-only growing sources.

    Construction requires a *follow plan* (``QueryPlan.build(...,
    follow=True)``), which retains the per-side delta handles.  The kernel
    behaves exactly like :class:`~repro.core.kernel.ExecutionKernel` —
    same step protocol, pause/resume, snapshots — with two differences:
    results surface only after the arrival window closes (the streaming
    emission hold), and stepping an otherwise-idle kernel performs an
    arrival poll instead of finishing.

    Example::

        plan = QueryPlan.build(bound, follow=True)
        kernel = StreamingKernel(plan)
        kernel.step()                      # bootstrap
        table.append_row({...})            # rows arrive mid-run
        while kernel.step().kind != "ingest":
            pass                           # absorbed on the next poll
        kernel.close_ingest()              # end the arrival window
        results = list(kernel.drain())     # the full final result set
    """

    def __init__(
        self,
        plan: QueryPlan,
        *,
        stats_sink: dict | None = None,
    ) -> None:
        if plan.stream_sides is None:
            raise ExecutionError(
                "StreamingKernel requires a follow plan; build it with "
                "QueryPlan.build(..., follow=True)"
            )
        super().__init__(plan, stats_sink=stats_sink)
        self._sides: list[StreamSide] = list(plan.stream_sides)
        #: Per-side count of structure extensions already turned into
        #: regions.  Extensions appended by *other* followers sharing the
        #: cached structure advance the list but not this cursor, so each
        #: kernel integrates every delta partition exactly once.
        self._ext_seen = [len(s.structure.extensions) for s in self._sides]
        self._ingest_open = True
        self._next_rid = max(self.state.regions, default=-1) + 1
        self.polls = 0
        self.rows_ingested = 0
        self.regions_added = 0
        self.cells_reopened = 0
        self.state.hold_emissions = True
        self.state.careful_marking = True

    # ------------------------------------------------------------------
    # the arrival window
    # ------------------------------------------------------------------
    @property
    def ingest_open(self) -> bool:
        """Whether arrival polls still absorb appended rows."""
        return self._ingest_open

    def close_ingest(self) -> None:
        """End the arrival window.

        Every row appended *before* the close is still absorbed — the
        event loop runs one final arrival poll once its region queue dries
        up — and fully processed; once the last region completes the
        kernel releases the emission hold and finishes.  Idempotent.
        """
        self._ingest_open = False

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------
    def poll_deltas(self) -> int:
        """Absorb rows appended to either side; returns the row count.

        A side whose ``cache_token`` still equals the last absorbed cursor
        is skipped outright — no scan, no cache lookup, no store-counter
        movement — so an empty poll costs one ``queue_op`` and nothing
        else.  Grown sides are extended through the shared cache when the
        plan used one (keeping the patched-generation chain intact for
        queries 2..N), privately otherwise, and the fresh partitions are
        integrated as new output regions.
        """
        self.polls += 1
        self.clock.charge("queue_op")
        old_sides: list[list[InputPartition]] = []
        new_sides: list[list[InputPartition]] = []
        for i, side in enumerate(self._sides):
            old_sides.append(self._known_partitions(i))
            token_now = side.table.cache_token
            if token_now == side.token:
                new_sides.append([])
                continue
            self._absorb(side, token_now)
            side.token = token_now
            extensions = side.structure.extensions
            new_sides.append(list(extensions[self._ext_seen[i]:]))
            self._ext_seen[i] = len(extensions)
        rows = sum(len(p) for parts in new_sides for p in parts)
        if rows:
            self.rows_ingested += rows
            self._integrate(old_sides, new_sides)
        return rows

    def _known_partitions(self, i: int) -> list[InputPartition]:
        """All partitions of side ``i`` already turned into regions."""
        structure = self._sides[i].structure
        parts = structure.partitions
        base = list(parts.values()) if isinstance(parts, dict) else list(parts)
        return base + list(structure.extensions[: self._ext_seen[i]])

    def _absorb(self, side: StreamSide, token_now: tuple) -> None:
        """Extend ``side``'s partitioning to cover rows up to ``token_now``."""
        table = side.table
        if side.cache is not None:
            structure, outcome, delta_rows = side.cache.get_or_partition_outcome(
                side.partitioner, table, side.attributes, side.join_attribute,
                source=side.alias,
            )
            if structure is side.structure:
                # Either another follower already patched the shared
                # structure to the current generation (a hit) or our
                # request just did; both leave the delta partitions on
                # ``extensions`` for the cursor to pick up.
                self.clock.charge("cache_op")
                if outcome == "patched" and delta_rows:
                    self.clock.charge("partition_op", delta_rows)
                return
            # The store no longer hands out our structure (evicted, or an
            # unprovable delta forced a rebuild); patch our copy privately.
        if delta_start_row(table, side.token) is None:
            raise ExecutionError(
                f"source {table.name!r} mutated non-append-only while a "
                "follow query was running; streaming ingestion requires "
                "append-only arrival"
            )
        created = side.partitioner.partition_delta(
            side.structure, table, side.attributes, side.join_attribute,
            since_token=side.token, end_row=token_now[2],
        )
        self.clock.charge("partition_op", sum(len(p) for p in created))

    # ------------------------------------------------------------------
    # integrating a delta
    # ------------------------------------------------------------------
    def _integrate(
        self,
        old_sides: list[list[InputPartition]],
        new_sides: list[list[InputPartition]],
    ) -> None:
        """Create and wire the output regions the delta pairs generate.

        Exactly the pairs no prior region covers: ``ΔL x (R ∪ ΔR)`` plus
        ``L x ΔR``.  Signature join pruning applies as in the base
        look-ahead; region- and cell-level domination pruning are skipped —
        they are optimisations, and the base grid's premarked cells keep
        discarding whatever falls into them.
        """
        bound = self.bound
        clock = self.clock
        old_left, old_right = old_sides
        new_left, new_right = new_sides
        left_attrs = self._sides[0].structure.attributes
        right_attrs = self._sides[1].structure.attributes
        pairs = [
            (lp, rp) for lp in new_left for rp in old_right + new_right
        ] + [(lp, rp) for lp in old_left for rp in new_right]
        regions: list[OutputRegion] = []
        for lp, rp in pairs:
            clock.charge("partition_op")
            if not lp.signature.may_share(rp.signature):
                continue
            lower, upper = bound.region_box(
                lp.attribute_intervals(left_attrs),
                rp.attribute_intervals(right_attrs),
            )
            guaranteed = lp.signature.definitely_shares(rp.signature)
            expected = lp.signature.expected_join_size(rp.signature)
            regions.append(
                OutputRegion(
                    self._next_rid, lp, rp, lower, upper, expected, guaranteed
                )
            )
            self._next_rid += 1
        if regions:
            self._wire_regions(regions)

    def _wire_regions(self, regions: list[OutputRegion]) -> None:
        """Wire new regions into the grid, graph and ordering policy.

        Mirrors :func:`~repro.core.lookahead.build_output_grid` coverage
        semantics over the *existing* output grid (region boxes beyond its
        domain clamp into edge cells, matching where their clamped tuples
        will land).  Settled unmarked cells a new region covers are
        reopened; cells activated for the first time get incremental cone
        wiring.  New regions enter the elimination graph edge-free, so the
        policy treats them as roots.
        """
        grid = self.plan.grid
        state = self.state
        clock = self.clock
        new_cells: list[OutputCell] = []
        for region in regions:
            cmin, cmax = grid.box_cell_range(region.lower, region.upper)
            region.cell_min, region.cell_max = cmin, cmax
            for coords in grid.iter_coords_in_range(cmin, cmax):
                clock.charge("partition_op")
                fresh = coords not in grid.cells
                cell = grid.activate(coords)
                if fresh:
                    new_cells.append(cell)
                elif cell.settled and not cell.marked:
                    state.reopen_cell(cell)
                    self.cells_reopened += 1
                cell.reg_count += 1
                cell.region_ids.append(region.rid)
                region.covered.append(cell)
            region.unmarked_covered = sum(
                1 for c in region.covered if not c.marked
            )
        if new_cells:
            self._wire_cones(new_cells)
        # Register every region before ranking any: the benefit function
        # walks shared cells' region_ids, which may already name a sibling
        # from this same batch.
        for region in regions:
            state.regions[region.rid] = region
            self.graph.regions[region.rid] = region
        for region in regions:
            self.policy.add_region(region)
        self.regions_added += len(regions)

    def _wire_cones(self, new_cells: list[OutputCell]) -> None:
        """Incremental dominance-cone wiring for freshly activated cells.

        Replicates :meth:`~repro.core.output_grid.OutputGrid.build_cones`
        adjacency for the new cells against the existing unmarked
        population and among themselves.  Existing cells gaining a new
        (necessarily unsettled) cone_lower member get ``pending += 1``;
        the new cells' own pending counts are computed from scratch.
        """
        grid = self.plan.grid
        new_coords = {c.coords for c in new_cells}
        old = [
            c for c in grid.cells.values()
            if not c.marked and c.coords not in new_coords
        ]
        nc = np.array([c.coords for c in new_cells], dtype=np.int32)
        if old:
            oc = np.array([c.coords for c in old], dtype=np.int32)
            # New and old coords are always distinct, so <= without an
            # equality carve-out is exactly the cone relation.
            le_no = (nc[:, None, :] <= oc[None, :, :]).all(axis=2)
            st_no = (nc[:, None, :] + 1 <= oc[None, :, :]).all(axis=2)
            le_on = (oc[:, None, :] <= nc[None, :, :]).all(axis=2)
            st_on = (oc[:, None, :] + 1 <= nc[None, :, :]).all(axis=2)
            for i, cell in enumerate(new_cells):
                for j in np.nonzero(le_no[i])[0]:
                    other = old[j]
                    cell.cone_upper.append(other)
                    other.cone_lower.append(cell)
                    other.pending += 1
                cell.strict_upper.extend(
                    old[j] for j in np.nonzero(st_no[i])[0]
                )
            for j, other in enumerate(old):
                for i in np.nonzero(le_on[j])[0]:
                    cell = new_cells[i]
                    other.cone_upper.append(cell)
                    cell.cone_lower.append(other)
                strict = np.nonzero(st_on[j])[0]
                if strict.size:
                    other.strict_upper.extend(new_cells[i] for i in strict)
        if len(new_cells) > 1:
            le = (nc[:, None, :] <= nc[None, :, :]).all(axis=2)
            eq = (nc[:, None, :] == nc[None, :, :]).all(axis=2)
            st = (nc[:, None, :] + 1 <= nc[None, :, :]).all(axis=2)
            upper = le & ~eq
            for i, cell in enumerate(new_cells):
                for j in np.nonzero(upper[i])[0]:
                    cell.cone_upper.append(new_cells[j])
                    new_cells[j].cone_lower.append(cell)
                cell.strict_upper.extend(
                    new_cells[j] for j in np.nonzero(st[i])[0]
                )
        for cell in new_cells:
            cell.pending = sum(
                1 for lc in cell.cone_lower if not lc.settled
            )

    # ------------------------------------------------------------------
    # the streaming event loop
    # ------------------------------------------------------------------
    def _event_loop(self) -> Iterator[ResultTuple | _StepBoundary]:
        bound = self.bound
        state = self.state
        policy = self.policy

        # Bootstrap parity with the base kernel: the sweep runs, but the
        # emission hold suppresses output (a cell settled by look-ahead
        # may yet be reopened by an arrival).
        for cell in self.plan.grid.cells.values():
            if cell.settled and not cell.marked:
                state.emit_settled(cell)
        yield _StepBoundary(STEP_BOOTSTRAP, None)

        while True:
            region = policy.next_region()
            if region is None:
                if self._ingest_open:
                    # Queue dry but the window is open: one arrival poll is
                    # the scheduling unit.  The poll always charges the
                    # clock, so a live follow query stays steppable.
                    self.poll_deltas()
                    yield _StepBoundary(STEP_INGEST, None)
                    continue
                # Window closed: a final poll catches rows appended before
                # the close that no open-window poll observed (the common
                # append -> close -> drain pattern).  Absorbed rows create
                # regions, so loop back to process them.
                if self.poll_deltas():
                    yield _StepBoundary(STEP_INGEST, None)
                    continue
                break
            if region.done:
                continue
            for _vector, lrow, rrow, mapped in self._process(region):
                yield bound.make_result(lrow, rrow, mapped)
            region.processed = True
            self.regions_processed += 1
            state.complete_region(region)
            for _vector, lrow, rrow, mapped in state.drain_emissions():
                yield bound.make_result(lrow, rrow, mapped)
            policy.on_region_done(region)
            for discarded in state.drain_discarded():
                policy.on_region_done(discarded)
            yield _StepBoundary(STEP_REGION, region.rid)

        # The window is closed and every region is done: the ordinary
        # emittable condition is proof of finality again — release.
        state.release_emissions()
        for _vector, lrow, rrow, mapped in state.drain_emissions():
            yield bound.make_result(lrow, rrow, mapped)
        self._finalize()

    def _finalize(self) -> None:
        super()._finalize()
        self.stats.update(
            {
                "polls": self.polls,
                "rows_ingested": self.rows_ingested,
                "regions_added": self.regions_added,
                "cells_reopened": self.cells_reopened,
            }
        )
