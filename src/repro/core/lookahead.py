"""Output-space look-ahead (paper §III-A).

Executes join and skyline reasoning at partition granularity, before any
tuple is touched:

1. **Join pruning** — input partition pairs whose join-value signatures
   provably share no value generate no region at all.
2. **Region construction** — for the surviving pairs, the mapping functions
   are evaluated over the partition bounding boxes with interval arithmetic
   to obtain the output region each pair populates (Example 1).
3. **Region-level elimination** — a region *guaranteed* to be populated
   whose upper corner dominates another region's lower corner eliminates
   that region outright: its join never runs (Example 2).
4. **Cell-level marking** — guaranteed regions mark output cells that any
   of their future tuples must dominate as "non-contributing"
   (Example 3); results mapped there are discarded without comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.core.output_grid import OutputGrid
from repro.core.regions import OutputRegion
from repro.query.smj import BoundQuery
from repro.runtime.clock import VirtualClock
from repro.storage.grid import InputGrid

#: Relative box expansion guarding against floating-point rounding between
#: interval arithmetic and per-tuple evaluation order.
_BOX_EPS = 1e-9


def build_regions(
    bound: BoundQuery,
    left_grid: InputGrid,
    right_grid: InputGrid,
    clock: VirtualClock,
) -> list[OutputRegion]:
    """Construct output regions for all joinable partition pairs."""
    regions: list[OutputRegion] = []
    rid = 0
    for lpart in left_grid:
        left_bounds = lpart.attribute_intervals(left_grid.attributes)
        for rpart in right_grid:
            clock.charge("partition_op")
            if not lpart.signature.may_share(rpart.signature):
                continue
            lower, upper = bound.region_box(
                left_bounds, rpart.attribute_intervals(right_grid.attributes)
            )
            guaranteed = lpart.signature.definitely_shares(rpart.signature)
            expected = lpart.signature.expected_join_size(rpart.signature)
            regions.append(
                OutputRegion(rid, lpart, rpart, lower, upper, expected, guaranteed)
            )
            rid += 1
    return regions


def eliminate_dominated_regions(
    regions: list[OutputRegion], clock: VirtualClock
) -> list[OutputRegion]:
    """Region-level complete elimination (Example 2).

    A guaranteed region ``g`` holds at least one tuple ``v <= g.upper``; if
    ``g.upper <= r.lower`` everywhere with strict inequality somewhere, that
    tuple dominates *every* tuple ``r`` can ever produce, so ``r`` is
    discarded.  Vectorised over all (guaranteed, region) pairs.
    """
    if not regions:
        return regions
    guaranteed = [r for r in regions if r.guaranteed]
    if not guaranteed:
        return regions
    uppers = np.array([g.upper for g in guaranteed])  # (G, d)
    lowers = np.array([r.lower for r in regions])  # (N, d)
    clock.charge("graph_op", len(guaranteed))
    le = uppers[:, None, :] <= lowers[None, :, :]
    lt = uppers[:, None, :] < lowers[None, :, :]
    dominated_by = le.all(axis=2) & lt.any(axis=2)  # (G, N)
    # A guaranteed region never eliminates itself: its upper corner cannot
    # strictly dominate its own lower corner (upper >= lower).
    dominated = dominated_by.any(axis=0)
    survivors = []
    for region, dead in zip(regions, dominated):
        if dead:
            region.discarded = True
        else:
            survivors.append(region)
    return survivors


def build_output_grid(
    bound: BoundQuery,
    regions: list[OutputRegion],
    cells_per_dim: int,
    clock: VirtualClock,
) -> OutputGrid:
    """Materialise the active output grid and wire region coverage."""
    d = bound.skyline_dimension_count
    if regions:
        lo = [min(r.lower[i] for r in regions) for i in range(d)]
        hi = [max(r.upper[i] for r in regions) for i in range(d)]
    else:  # degenerate but legal: empty join
        lo, hi = [0.0] * d, [1.0] * d
    # Guard the box against exact-boundary values.
    span = [max(h - low, 1.0) for low, h in zip(lo, hi)]
    lo = [low - _BOX_EPS * s for low, s in zip(lo, span)]
    hi = [h + _BOX_EPS * s for h, s in zip(hi, span)]
    grid = OutputGrid(lo, hi, cells_per_dim)

    for region in regions:
        cmin, cmax = grid.box_cell_range(region.lower, region.upper)
        region.cell_min, region.cell_max = cmin, cmax
        for coords in grid.iter_coords_in_range(cmin, cmax):
            clock.charge("partition_op")
            cell = grid.activate(coords)
            cell.reg_count += 1
            cell.region_ids.append(region.rid)
            region.covered.append(cell)
        region.unmarked_covered = len(region.covered)
    return grid


def premark_dominated_cells(
    regions: list[OutputRegion],
    grid: OutputGrid,
    clock: VirtualClock,
) -> int:
    """Cell-level marking by guaranteed regions (Example 3).

    Each guaranteed region holds a future tuple ``v <= upper``; every active
    cell whose lower corner is ``>= upper`` everywhere and ``>`` somewhere
    is dominated by that tuple wholesale.  Returns the number of cells
    marked.  Runs before cone construction, so marked cells simply never
    enter the comparison topology.
    """
    guaranteed = [r for r in regions if r.guaranteed and not r.discarded]
    if not guaranteed or not grid.cells:
        return 0
    cells = list(grid.cells.values())
    lowers = np.array([c.lower for c in cells])  # (N, d)
    uppers = np.array([g.upper for g in guaranteed])  # (G, d)
    clock.charge("graph_op", len(guaranteed))
    le = uppers[:, None, :] <= lowers[None, :, :]
    lt = uppers[:, None, :] < lowers[None, :, :]
    dominated = (le.all(axis=2) & lt.any(axis=2)).any(axis=0)  # (N,)
    marked = 0
    region_by_id = {r.rid: r for r in regions}
    for cell, dead in zip(cells, dominated):
        if not dead or cell.marked:
            continue
        cell.marked = True
        cell.settled = True
        marked += 1
        for rid in cell.region_ids:
            region = region_by_id[rid]
            region.unmarked_covered -= 1
            if region.unmarked_covered == 0 and not region.done:
                # Every cell the region could populate is dominated: the
                # region's tuples are all dominated, skip it entirely.
                region.discarded = True
    if marked:
        # Discarded regions release their coverage so cells can settle.
        for region in regions:
            if region.discarded and region.covered:
                for cell in region.covered:
                    cell.reg_count -= 1
                    if cell.reg_count == 0 and not cell.settled:
                        cell.settled = True
                region.covered = []
    return marked


def run_lookahead(
    bound: BoundQuery,
    left_grid: InputGrid,
    right_grid: InputGrid,
    output_cells_per_dim: int,
    clock: VirtualClock,
) -> tuple[list[OutputRegion], OutputGrid]:
    """The full look-ahead pipeline; returns surviving regions and the grid.

    The returned region list excludes regions discarded at region level;
    regions discarded by cell-level marking remain in the list with their
    ``discarded`` flag set (the ordering policy skips them).
    """
    regions = build_regions(bound, left_grid, right_grid, clock)
    regions = eliminate_dominated_regions(regions, clock)
    grid = build_output_grid(bound, regions, output_cells_per_dim, clock)
    premark_dominated_cells(regions, grid, clock)
    grid.build_cones()
    return regions, grid
