"""The four ProgXe variants of the experimental study (paper §VI-B) and the
algorithm registry used by the benchmark harnesses.

* **ProgXe** — the core framework: look-ahead + ProgOrder + ProgDetermine.
* **ProgXe+** — core framework plus skyline partial push-through.
* **ProgXe (No-Order)** — ordering disabled (random region sequence),
  progressive result determination still on.
* **ProgXe+ (No-Order)** — push-through with random ordering.
"""

from __future__ import annotations

from repro.baselines.jfsl import JoinFirstSkylineLater
from repro.baselines.jfsl_plus import JoinFirstSkylineLaterPlus
from repro.baselines.saj import SortedAccessJoin
from repro.baselines.ssmj import SkylineSortMergeJoin
from repro.core.engine import ProgXeEngine
from repro.query.smj import BoundQuery
from repro.runtime.clock import VirtualClock


def progxe(bound: BoundQuery, clock: VirtualClock, **kwargs) -> ProgXeEngine:
    """The core ProgXe engine."""
    return ProgXeEngine(bound, clock, ordering=True, pushthrough=False, **kwargs)


def progxe_plus(bound: BoundQuery, clock: VirtualClock, **kwargs) -> ProgXeEngine:
    """ProgXe with skyline partial push-through."""
    return ProgXeEngine(bound, clock, ordering=True, pushthrough=True, **kwargs)


def progxe_no_order(bound: BoundQuery, clock: VirtualClock, **kwargs) -> ProgXeEngine:
    """ProgXe with random region ordering (ordering ablation)."""
    return ProgXeEngine(bound, clock, ordering=False, pushthrough=False, **kwargs)


def progxe_plus_no_order(
    bound: BoundQuery, clock: VirtualClock, **kwargs
) -> ProgXeEngine:
    """ProgXe+ with random region ordering."""
    return ProgXeEngine(bound, clock, ordering=False, pushthrough=True, **kwargs)


#: The variants compared in Figures 10a–f.
PROGXE_VARIANTS = {
    "ProgXe": progxe,
    "ProgXe+": progxe_plus,
    "ProgXe (No-Order)": progxe_no_order,
    "ProgXe+ (No-Order)": progxe_plus_no_order,
}

#: Every algorithm in the library, by display name.
ALGORITHMS = {
    **PROGXE_VARIANTS,
    "JF-SL": JoinFirstSkylineLater,
    "JF-SL+": JoinFirstSkylineLaterPlus,
    "SSMJ": SkylineSortMergeJoin,
    "SAJ": SortedAccessJoin,
}
