"""The four ProgXe variants of the experimental study (paper §VI-B) and the
algorithm registry used by the benchmark harnesses.

* **ProgXe** — the core framework: look-ahead + ProgOrder + ProgDetermine.
* **ProgXe+** — core framework plus skyline partial push-through.
* **ProgXe (No-Order)** — ordering disabled (random region sequence),
  progressive result determination still on.
* **ProgXe+ (No-Order)** — push-through with random ordering.

``ALGORITHMS`` keeps its historical dict-shaped surface but is now a
read-only view over the session layer's default
:class:`~repro.session.registry.AlgorithmRegistry` — registering an
algorithm there makes it visible here (and to every new
:class:`~repro.session.service.Session`) without touching this module.
"""

from __future__ import annotations

from repro.baselines.jfsl import JoinFirstSkylineLater
from repro.baselines.jfsl_plus import JoinFirstSkylineLaterPlus
from repro.baselines.saj import SortedAccessJoin
from repro.baselines.ssmj import SkylineSortMergeJoin
from repro.core.engine import ProgXeEngine
from repro.query.smj import BoundQuery
from repro.runtime.clock import VirtualClock
from repro.session.registry import AlgorithmRegistry, RegistryView


def progxe(bound: BoundQuery, clock: VirtualClock, **kwargs) -> ProgXeEngine:
    """The core ProgXe engine."""
    return ProgXeEngine(bound, clock, ordering=True, pushthrough=False, **kwargs)


def progxe_plus(bound: BoundQuery, clock: VirtualClock, **kwargs) -> ProgXeEngine:
    """ProgXe with skyline partial push-through."""
    return ProgXeEngine(bound, clock, ordering=True, pushthrough=True, **kwargs)


def progxe_no_order(bound: BoundQuery, clock: VirtualClock, **kwargs) -> ProgXeEngine:
    """ProgXe with random region ordering (ordering ablation)."""
    return ProgXeEngine(bound, clock, ordering=False, pushthrough=False, **kwargs)


def progxe_plus_no_order(
    bound: BoundQuery, clock: VirtualClock, **kwargs
) -> ProgXeEngine:
    """ProgXe+ with random region ordering."""
    return ProgXeEngine(bound, clock, ordering=False, pushthrough=True, **kwargs)


#: The variants compared in Figures 10a–f.
PROGXE_VARIANTS = {
    "ProgXe": progxe,
    "ProgXe+": progxe_plus,
    "ProgXe (No-Order)": progxe_no_order,
    "ProgXe+ (No-Order)": progxe_plus_no_order,
}


def populate_registry(registry: AlgorithmRegistry) -> AlgorithmRegistry:
    """Register every built-in algorithm, in the historical display order."""
    registry.register(
        "ProgXe", progxe, aliases=("progxe",), configurable=True,
        description="look-ahead + ProgOrder + ProgDetermine (the paper)",
        tags=("progressive",),
    )
    registry.register(
        "ProgXe+", progxe_plus, aliases=("progxe+", "progxe_plus"),
        configurable=True,
        description="ProgXe with skyline partial push-through",
        tags=("progressive",),
    )
    registry.register(
        "ProgXe (No-Order)", progxe_no_order, aliases=("progxe-no-order",),
        configurable=True,
        description="ProgXe with random region ordering (ablation)",
        tags=("progressive", "ablation"),
    )
    registry.register(
        "ProgXe+ (No-Order)", progxe_plus_no_order,
        aliases=("progxe+-no-order",), configurable=True,
        description="ProgXe+ with random region ordering (ablation)",
        tags=("progressive", "ablation"),
    )
    registry.register(
        "JF-SL", JoinFirstSkylineLater, aliases=("jfsl",),
        description="blocking baseline: full join, then skyline",
        tags=("baseline", "blocking"),
    )
    registry.register(
        "JF-SL+", JoinFirstSkylineLaterPlus, aliases=("jfsl+", "jfsl_plus"),
        description="JF-SL with push-through pre-pruning",
        tags=("baseline", "blocking"),
    )
    registry.register(
        "SSMJ", SkylineSortMergeJoin, aliases=("ssmj",),
        description="skyline sort-merge join (state of the art, §VI-C)",
        tags=("baseline",),
    )
    registry.register(
        "SAJ", SortedAccessJoin, aliases=("saj",),
        description="sorted-access join baseline",
        tags=("baseline",),
    )
    return registry


def _default_registry() -> AlgorithmRegistry:
    from repro.session.registry import default_registry

    return default_registry()


#: Every algorithm in the library, by display name.  A live read-only view
#: over the default registry; the dict-style surface (iteration, lookup,
#: ``items()``) is unchanged.
ALGORITHMS = RegistryView(_default_registry)
