"""ProgOrder: progressive-driven ordering (paper §IV-D, Algorithm 1).

Maintains the roots of the elimination graph in an inverted priority queue
ranked by ``rank = Benefit / Cost`` (Eq. 8).  Regions are handed out for
tuple-level processing highest-rank first; when a region completes (or is
discarded), its outgoing edges are removed, newly rootless regions are
ranked and enqueued, and stale queue entries are refreshed lazily — sound
because both ProgCount and therefore rank are non-decreasing over time.

Mutual partial elimination can leave the graph rootless while regions
remain (cycles of Figure 6.d); the policy then breaks the cycle by ranking
every remaining region directly.

:class:`RandomOrder` is the paper's "(No-Order)" ablation: regions are
processed in seeded-random order, with ProgDetermine still deciding safe
early output.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable

from repro.core.elimination_graph import EliminationGraph
from repro.core.regions import OutputRegion
from repro.runtime.clock import VirtualClock

RankFn = Callable[[OutputRegion], float]


class ProgOrder:
    """Benefit/cost-ranked region ordering over EL-Graph roots."""

    name = "ProgOrder"

    def __init__(
        self, graph: EliminationGraph, rank_fn: RankFn, clock: VirtualClock
    ) -> None:
        self.graph = graph
        self.rank_fn = rank_fn
        self.clock = clock
        self._heap: list[tuple[float, int, OutputRegion]] = []
        self._seq = 0
        for region in graph.roots():
            self._push(region)

    def _push(self, region: OutputRegion) -> None:
        rank = self.rank_fn(region)
        self.clock.charge("queue_op")
        heapq.heappush(self._heap, (-rank, self._seq, region))
        self._seq += 1

    def next_region(self) -> OutputRegion | None:
        """Highest-rank pending region, or ``None`` when all are done."""
        refreshes = 0
        budget = len(self._heap) + 2
        while True:
            while self._heap:
                neg_rank, _, region = heapq.heappop(self._heap)
                self.clock.charge("queue_op")
                if region.done:
                    continue
                # Ranks only grow as cells settle, so a popped entry may be
                # stale-low.  Refresh it; if something else now outranks it,
                # push it back and look again (bounded to stay O(heap)).
                fresh = self.rank_fn(region)
                if (
                    refreshes < budget
                    and self._heap
                    and fresh < -self._heap[0][0]
                ):
                    refreshes += 1
                    heapq.heappush(self._heap, (-fresh, self._seq, region))
                    self._seq += 1
                    continue
                return region
            # Queue exhausted: either done, or the graph is rootless due to
            # mutual (cyclic) partial elimination — break the cycle by
            # ranking everything still pending.
            remaining = self.graph.remaining()
            if not remaining:
                return None
            for region in remaining:
                self._push(region)

    def on_region_done(self, region: OutputRegion) -> None:
        """Graph maintenance after processing/discarding (lines 10–19)."""
        for new_root in self.graph.remove(region):
            self._push(new_root)

    def add_region(self, region: OutputRegion) -> None:
        """Streaming: enqueue a region created after construction.

        Regions built over newly arrived rows enter the elimination graph
        edge-free (in-degree 0), so they are roots by definition and go
        straight onto the rank queue.
        """
        self._push(region)

    def peek_rank(self) -> float:
        """Rank of the best queued region, without any queue mutation.

        A pure read used by the multi-query scheduler's benefit-greedy
        policy to compare *across* queries.  The heap top may be stale
        (done or stale-low); that is acceptable for a scheduling heuristic
        and keeps the peek free of clock charges, so interleaved and solo
        executions stay step-for-step identical.
        """
        if self._heap:
            return -self._heap[0][0]
        return 0.0


class RandomOrder:
    """The "(No-Order)" ablation: seeded-random region sequencing."""

    name = "RandomOrder"

    def __init__(
        self,
        graph: EliminationGraph,
        rank_fn: RankFn,  # accepted for interface parity; unused
        clock: VirtualClock,
        *,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.clock = clock
        order = list(graph.regions.values())
        random.Random(seed).shuffle(order)  # repro: allow[determinism] — caller-supplied seed; the shuffle is the ablation's whole point
        self._order = order
        self._cursor = 0

    def next_region(self) -> OutputRegion | None:
        while self._cursor < len(self._order):
            region = self._order[self._cursor]
            self._cursor += 1
            self.clock.charge("queue_op")
            if not region.done:
                return region
        return None

    def on_region_done(self, region: OutputRegion) -> None:
        # Keep the graph's degrees consistent for inspection, although
        # random ordering never consults them.
        self.graph.remove(region)

    def add_region(self, region: OutputRegion) -> None:
        """Streaming: append a late region in arrival order.

        The ablation's shuffle covers the initial region set; regions
        created by arrival polls are processed in the (deterministic)
        order they were built.
        """
        self._order.append(region)

    def peek_rank(self) -> float:
        """Random ordering carries no benefit signal; always 0."""
        return 0.0
