"""The output-space grid: cells, dominance cones and marking (paper §III).

The output space is partitioned into a uniform grid; every output region
covers the set of grid cells overlapping its box.  The grid is *lazy*: only
cells covered by at least one surviving region are materialised ("active"),
everything else is vacuously empty.

Dominance geometry (all in normalised minimisation space, half-open cells):

* ``cone_lower(Oh)`` — active cells with coordinates ``<=`` Oh's in every
  dimension (excluding Oh itself).  Only tuples mapped there can ever
  dominate a tuple in Oh.  This is the paper's §III-B observation that a
  new tuple needs comparisons against at most ``k^d - (k-1)^d`` cells (the
  slice-sharing portion of the cone — strictly-lower populated cells mark
  Oh outright).
* ``cone_upper(Oh)`` — the inverse: cells whose tuples a new Oh tuple can
  dominate, and the cells to notify when Oh settles.
* ``strict upper cells`` — coordinates ``>= Oh + 1`` everywhere: one tuple
  in Oh dominates *everything* that can ever fall there, so the cell is
  marked "non-contributing" wholesale (Example 3).

Marking uses value-level checks (witness ``v`` against the cell's lower
corner with at least one strict inequality) so boundary ties can never be
wrongly discarded.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import ExecutionError

#: An entry buffered in a cell: (vector, left_row, right_row, raw mapped).
CellEntry = tuple[tuple[float, ...], tuple, tuple, tuple]


class OutputCell:
    """One output partition ``O_h`` with its ProgDetermine bookkeeping.

    Count-based realisation of the paper's §V lists: ``reg_count`` is the
    paper's RegCount; ``pending`` folds the Dom/Dependent conditions into
    one number — the count of unsettled cone_lower cells (a cell emits only
    when tuples that could dominate its contents can no longer appear).
    """

    __slots__ = (
        "coords",
        "lower",
        "reg_count",
        "pending",
        "marked",
        "settled",
        "emitted",
        "entries",
        "cone_lower",
        "cone_upper",
        "strict_upper",
        "region_ids",
        "_vcache",
    )

    def __init__(self, coords: tuple[int, ...], lower: tuple[float, ...]) -> None:
        self.coords = coords
        self.lower = lower
        self.reg_count = 0
        self.pending = 0
        self.marked = False
        self.settled = False
        self.emitted = False
        self.entries: list[CellEntry] = []
        self.cone_lower: list["OutputCell"] = []
        self.cone_upper: list["OutputCell"] = []
        self.strict_upper: list["OutputCell"] = []
        self.region_ids: list[int] = []
        self._vcache: np.ndarray | None = None

    def invalidate_vectors(self) -> None:
        """Drop the cached vector matrix; call after mutating ``entries``."""
        self._vcache = None

    def vector_matrix(self) -> np.ndarray | None:
        """Entry vectors as a cached ``(len(entries), d)`` float matrix.

        ``None`` when the cell is empty.  Every site that mutates
        ``entries`` must call :meth:`invalidate_vectors`; callers must
        treat the returned array as read-only.
        """
        entries = self.entries
        if not entries:
            self._vcache = None
            return None
        cache = self._vcache
        if cache is None:
            cache = np.asarray([e[0] for e in entries], dtype=float)
            self._vcache = cache
        return cache

    @property
    def emittable(self) -> bool:
        """Principle 1 realised: settled, unmarked, no live dominators."""
        return (
            self.settled
            and not self.marked
            and not self.emitted
            and self.pending == 0
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = []
        if self.marked:
            flags.append("marked")
        if self.settled:
            flags.append("settled")
        if self.emitted:
            flags.append("emitted")
        return (
            f"OutputCell({list(self.coords)}, reg={self.reg_count}, "
            f"pend={self.pending}, {len(self.entries)} entries"
            + (", " + "|".join(flags) if flags else "")
            + ")"
        )


class OutputGrid:
    """Uniform grid over the normalised output space with lazy active cells."""

    def __init__(
        self,
        lower: Sequence[float],
        upper: Sequence[float],
        cells_per_dim: int,
    ) -> None:
        if cells_per_dim < 1:
            raise ValueError(f"cells_per_dim must be >= 1, got {cells_per_dim}")
        self.dimensions = len(lower)
        self.lower = tuple(float(v) for v in lower)
        self.upper = tuple(float(v) for v in upper)
        self.cells_per_dim = cells_per_dim
        self.widths = tuple(
            (hi - lo) / cells_per_dim if hi > lo else 1.0
            for lo, hi in zip(self.lower, self.upper)
        )
        self.cells: dict[tuple[int, ...], OutputCell] = {}

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def coords_of(self, vector: Sequence[float]) -> tuple[int, ...]:
        """Grid coordinates of a point (clamped into the grid)."""
        k = self.cells_per_dim
        out = []
        for v, lo, w in zip(vector, self.lower, self.widths):
            c = int((v - lo) / w)
            if c < 0:
                c = 0
            elif c >= k:
                c = k - 1
            out.append(c)
        return tuple(out)

    def coords_matrix(self, vectors: np.ndarray) -> np.ndarray:
        """Batched :meth:`coords_of`: ``(n, d)`` points → ``(n, d)`` int coords.

        Identical arithmetic to the scalar path (truncation then clamping
        agrees with flooring once clamped to ``[0, k-1]``), so batch and
        per-tuple insertion route every vector to the same cell.
        """
        pts = np.asarray(vectors, dtype=float)
        lo = np.asarray(self.lower)
        w = np.asarray(self.widths)
        c = np.floor((pts - lo) / w).astype(np.int64)
        return np.clip(c, 0, self.cells_per_dim - 1)

    def cell_lower(self, coords: Sequence[int]) -> tuple[float, ...]:
        """Attribute-space lower corner of a cell."""
        return tuple(
            lo + c * w for c, lo, w in zip(coords, self.lower, self.widths)
        )

    def box_cell_range(
        self, lower: Sequence[float], upper: Sequence[float]
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Inclusive coordinate range of cells overlapping a box."""
        return self.coords_of(lower), self.coords_of(upper)

    def iter_coords_in_range(
        self, cmin: Sequence[int], cmax: Sequence[int]
    ) -> Iterator[tuple[int, ...]]:
        """All integer coordinate tuples in the inclusive range."""
        d = self.dimensions
        coords = list(cmin)
        while True:
            yield tuple(coords)
            for i in range(d - 1, -1, -1):
                if coords[i] < cmax[i]:
                    coords[i] += 1
                    break
                coords[i] = cmin[i]
            else:
                return

    # ------------------------------------------------------------------
    # activation and cones
    # ------------------------------------------------------------------
    def activate(self, coords: tuple[int, ...]) -> OutputCell:
        """Materialise (or fetch) the cell at ``coords``."""
        cell = self.cells.get(coords)
        if cell is None:
            cell = OutputCell(coords, self.cell_lower(coords))
            self.cells[coords] = cell
        return cell

    def cell_for_vector(self, vector: Sequence[float]) -> OutputCell:
        """Active cell containing a point; error if the point maps outside
        every region (an engine invariant violation)."""
        coords = self.coords_of(vector)
        cell = self.cells.get(coords)
        if cell is None:
            raise ExecutionError(
                f"mapped result {vector} fell into inactive cell {coords}; "
                "region covering is broken"
            )
        return cell

    def build_cones(self) -> None:
        """Compute dominance-cone adjacency among unmarked active cells.

        Pairwise comparison over the active coordinate matrix with numpy,
        blocked to bound peak memory.  Pre-marked cells are settled and
        excluded — they can never hold entries, so they participate in no
        comparisons and no pending counts.
        """
        live = [c for c in self.cells.values() if not c.marked]
        n = len(live)
        if n == 0:
            return
        coords = np.array([c.coords for c in live], dtype=np.int32)
        block = max(1, min(n, 4_000_000 // max(1, n)))
        for start in range(0, n, block):
            stop = min(n, start + block)
            chunk = coords[start:stop]  # (b, d)
            # le[i, j] true when chunk[i] <= coords[j] on every dimension.
            le = (chunk[:, None, :] <= coords[None, :, :]).all(axis=2)
            eq = (chunk[:, None, :] == coords[None, :, :]).all(axis=2)
            strict = (chunk[:, None, :] + 1 <= coords[None, :, :]).all(axis=2)
            upper_mask = le & ~eq
            for bi in range(stop - start):
                cell = live[start + bi]
                ups = np.nonzero(upper_mask[bi])[0]
                cell.cone_upper = [live[j] for j in ups]
                cell.strict_upper = [live[j] for j in np.nonzero(strict[bi])[0]]
                for j in ups:
                    live[j].cone_lower.append(cell)
        for cell in live:
            cell.pending = sum(1 for lc in cell.cone_lower if not lc.settled)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Number of materialised cells."""
        return len(self.cells)

    @property
    def marked_count(self) -> int:
        """Number of cells marked non-contributing."""
        return sum(1 for c in self.cells.values() if c.marked)

    def live_entry_count(self) -> int:
        """Total buffered entries across unmarked cells."""
        return sum(len(c.entries) for c in self.cells.values() if not c.marked)

    def mean_cone_size(self) -> float:
        """Average ``|cone_lower| + |cone_upper|`` over unmarked cells
        (the ``CP_avg`` of the paper's cost model, Eq. 6)."""
        live = [c for c in self.cells.values() if not c.marked]
        if not live:
            return 1.0
        total = sum(len(c.cone_lower) + len(c.cone_upper) + 1 for c in live)
        return total / len(live)
