"""JSON serialisation of run results and comparison reports.

Benchmark harnesses persist their measurements as structured JSON next to
the human-readable text, so downstream analysis (plotting, regression
tracking across commits) does not have to re-run anything or scrape text
tables.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.runtime.compare import ComparisonReport
from repro.runtime.runner import RunResult


def run_to_dict(run: RunResult, *, curve_points: int = 40) -> dict[str, Any]:
    """Serialisable summary of one run: metrics, counters and the curve."""
    summary = run.summary()
    return {
        "name": run.name,
        "summary": summary,
        "operation_counts": run.clock.snapshot(),
        "curve": [
            {"vtime": t, "results": c}
            for t, c in run.recorder.curve(curve_points)
        ],
        "emissions": [
            {"index": e.index, "vtime": e.vtime} for e in run.recorder.events
        ],
    }


def report_to_dict(
    report: ComparisonReport, *, curve_points: int = 40
) -> dict[str, Any]:
    """Serialisable form of a full comparison report."""
    return {
        "algorithms": list(report.runs),
        "runs": {
            name: run_to_dict(run, curve_points=curve_points)
            for name, run in report.runs.items()
        },
    }


def write_report_json(
    report: ComparisonReport, path: str | pathlib.Path, **kwargs
) -> pathlib.Path:
    """Write a comparison report to a JSON file; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report_to_dict(report, **kwargs), indent=2))
    return path


def load_report_json(path: str | pathlib.Path) -> dict[str, Any]:
    """Load a previously written report JSON (plain dict form)."""
    return json.loads(pathlib.Path(path).read_text())


def curves_from_json(data: dict[str, Any]) -> dict[str, list[tuple[float, int]]]:
    """Extract per-algorithm curves from a loaded report dict."""
    return {
        name: [(pt["vtime"], pt["results"]) for pt in run["curve"]]
        for name, run in data["runs"].items()
    }
