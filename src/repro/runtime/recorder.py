"""Progressiveness measurement.

A :class:`ProgressRecorder` captures, for every emitted result, the virtual
and wall-clock timestamp — exactly the data behind the paper's
"total number of results output over time" plots (Figures 10–12).  The
derived metrics quantify the curves: time-to-first-result, time to any
fraction of the output, number of distinct emission instants (batchiness),
and the normalised area under the progressiveness curve.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass

from repro.runtime.clock import VirtualClock


@dataclass(frozen=True)
class EmissionEvent:
    """One result emission: sequence number and timestamps."""

    index: int  # 1-based cumulative result count
    vtime: float
    wall: float


class ProgressRecorder:
    """Records emission events against a :class:`VirtualClock`."""

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self.events: list[EmissionEvent] = []
        self._wall_start = time.perf_counter()
        self.finished_vtime: float | None = None
        self.finished_wall: float | None = None

    def record(self) -> None:
        """Record the emission of one result at the current clock state."""
        self.events.append(
            EmissionEvent(
                index=len(self.events) + 1,
                vtime=self.clock.now(),
                wall=time.perf_counter() - self._wall_start,
            )
        )

    def finish(self) -> None:
        """Mark the end of execution (total time, even if output ended earlier)."""
        self.finished_vtime = self.clock.now()
        self.finished_wall = time.perf_counter() - self._wall_start

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def total_results(self) -> int:
        """Number of results emitted."""
        return len(self.events)

    @property
    def total_vtime(self) -> float:
        """Virtual time at completion (falls back to last emission)."""
        if self.finished_vtime is not None:
            return self.finished_vtime
        return self.events[-1].vtime if self.events else 0.0

    def time_to_first(self) -> float | None:
        """Virtual time of the first emission, or ``None`` if no output."""
        return self.events[0].vtime if self.events else None

    def time_to_fraction(self, fraction: float) -> float | None:
        """Virtual time at which ``fraction`` of all results were out."""
        if not self.events:
            return None
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        needed = max(1, int(round(fraction * len(self.events))))
        return self.events[needed - 1].vtime

    def results_by(self, vtime: float) -> int:
        """Cumulative results emitted at or before ``vtime``."""
        times = [e.vtime for e in self.events]
        return bisect.bisect_right(times, vtime)

    def emission_instants(self) -> list[float]:
        """Distinct virtual timestamps at which output appeared."""
        seen: list[float] = []
        for e in self.events:
            if not seen or e.vtime != seen[-1]:
                seen.append(e.vtime)
        return seen

    def batch_count(self) -> int:
        """Number of distinct emission instants (1–2 for blocking algorithms)."""
        return len(self.emission_instants())

    def progressiveness_auc(self) -> float:
        """Normalised area under the results-vs-time curve, in ``[0, 1]``.

        1.0 means everything was emitted at time zero; 0.0 means everything
        arrived only at completion.  This is the scalar summary used by the
        benches to compare curve shapes.
        """
        total = self.total_results
        horizon = self.total_vtime
        if total == 0 or horizon <= 0.0:
            return 0.0
        # Sum over results of the fraction of the horizon they were "out".
        area = sum((horizon - e.vtime) / horizon for e in self.events)
        return area / total

    def curve(self, points: int = 50) -> list[tuple[float, int]]:
        """Sampled ``(vtime, cumulative results)`` series for plotting/printing."""
        horizon = self.total_vtime
        if horizon <= 0.0:
            return [(0.0, self.total_results)]
        out = []
        for i in range(points + 1):
            t = horizon * i / points
            out.append((t, self.results_by(t)))
        return out


@dataclass(frozen=True)
class InterleaveEvent:
    """One scheduler dispatch: which query stepped, and what it cost.

    ``global_vtime`` is the shared scheduler timeline — the cumulative
    virtual time charged across *all* queries up to and including this
    step — so per-query progress can be plotted on one axis.
    """

    seq: int
    query_id: int
    kind: str
    vtime_delta: float
    results: int
    global_vtime: float


class InterleaveRecorder:
    """Records the dispatch sequence of a multi-query scheduler run.

    The multi-query analogue of :class:`ProgressRecorder`: where that class
    captures *when results appear* within one execution, this one captures
    *how executions were woven together* — the raw material for fairness
    and context-switch analysis of scheduling policies.
    """

    def __init__(self) -> None:
        self.events: list[InterleaveEvent] = []

    def record(
        self,
        query_id: int,
        kind: str,
        vtime_delta: float,
        results: int,
        global_vtime: float,
    ) -> None:
        """Append one dispatch record."""
        self.events.append(
            InterleaveEvent(
                seq=len(self.events) + 1,
                query_id=query_id,
                kind=kind,
                vtime_delta=vtime_delta,
                results=results,
                global_vtime=global_vtime,
            )
        )

    @property
    def dispatches(self) -> int:
        """Total scheduler dispatches recorded."""
        return len(self.events)

    def switches(self) -> int:
        """Number of consecutive dispatches that changed query."""
        return sum(
            1
            for a, b in zip(self.events, self.events[1:])
            if a.query_id != b.query_id
        )

    def sequence(self) -> list[int]:
        """The query ids in dispatch order."""
        return [e.query_id for e in self.events]

    def per_query(self) -> dict[int, dict[str, float | int]]:
        """Per-query totals: steps, virtual time consumed, results emitted."""
        out: dict[int, dict[str, float | int]] = {}
        for e in self.events:
            row = out.setdefault(
                e.query_id, {"steps": 0, "vtime": 0.0, "results": 0}
            )
            row["steps"] += 1
            row["vtime"] += e.vtime_delta
            row["results"] += e.results
        return out

    def fairness_spread(self) -> float:
        """Max/min ratio of per-query virtual time consumed (1.0 = even).

        Only meaningful when every query ran to completion under the same
        workload shape; still a useful smoke signal for policy debugging.
        """
        totals = [row["vtime"] for row in self.per_query().values()]
        if not totals or min(totals) <= 0:
            return float("inf") if totals and max(totals) > 0 else 1.0
        return max(totals) / min(totals)
