"""Cross-algorithm comparison harness.

Runs several algorithms on the *same* bound query (each with a fresh virtual
clock), verifies they agree on the final result set, and renders the series
behind the paper's figures: cumulative results over time (Figures 10–12)
and total execution cost (Figures 10d–f, 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import ExecutionError
from repro.query.smj import BoundQuery
from repro.runtime.runner import AlgorithmFactory, RunResult, run_algorithm


@dataclass
class ComparisonReport:
    """Results of running a set of algorithms on one workload."""

    runs: dict[str, RunResult]

    def verify_agreement(self) -> None:
        """Raise :class:`ExecutionError` unless all result sets match."""
        names = list(self.runs)
        if len(names) < 2:
            return
        reference = self.runs[names[0]].result_keys
        for name in names[1:]:
            keys = self.runs[name].result_keys
            if keys != reference:
                missing = reference - keys
                extra = keys - reference
                raise ExecutionError(
                    f"result sets disagree: {name} vs {names[0]}; "
                    f"missing={len(missing)} extra={len(extra)}"
                )

    def progressiveness_table(
        self, checkpoints: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0)
    ) -> str:
        """Text table: virtual time to reach each output fraction."""
        header = ["algorithm", "results", "t_first"]
        header += [f"t_{int(c * 100)}%" for c in checkpoints]
        header += ["auc", "batches"]
        lines = ["  ".join(f"{h:>12}" for h in header)]
        for name, run in self.runs.items():
            rec = run.recorder
            row = [name[:12], str(rec.total_results)]
            row.append(_fmt(rec.time_to_first()))
            for c in checkpoints:
                row.append(_fmt(rec.time_to_fraction(c)))
            row.append(f"{rec.progressiveness_auc():.3f}")
            row.append(str(rec.batch_count()))
            lines.append("  ".join(f"{v:>12}" for v in row))
        return "\n".join(lines)

    def total_time_table(self) -> str:
        """Text table: total virtual cost per algorithm."""
        lines = [
            "  ".join(
                f"{h:>14}"
                for h in ("algorithm", "total_vtime", "dominance_cmps", "results")
            )
        ]
        for name, run in self.runs.items():
            lines.append(
                "  ".join(
                    f"{v:>14}"
                    for v in (
                        name[:14],
                        f"{run.recorder.total_vtime:.0f}",
                        str(run.clock.count('dominance_cmp')),
                        str(run.recorder.total_results),
                    )
                )
            )
        return "\n".join(lines)

    def series(self, points: int = 40) -> dict[str, list[tuple[float, int]]]:
        """Per-algorithm sampled (vtime, cumulative results) curves."""
        return {
            name: run.recorder.curve(points) for name, run in self.runs.items()
        }

    def ascii_chart(self, *, width: int = 64, height: int = 16,
                    title: str = "") -> str:
        """Render all runs' progressiveness curves as one text chart."""
        from repro.runtime.plots import ascii_curve

        horizon = max(run.recorder.total_vtime for run in self.runs.values())
        series = {}
        for name, run in self.runs.items():
            rec = run.recorder
            pts = [(e.vtime, e.index) for e in rec.events]
            pts.append((horizon, rec.total_results))
            series[name] = pts
        return ascii_curve(series, width=width, height=height, title=title)

    def summaries(self) -> dict[str, dict]:
        """Per-algorithm scalar summaries."""
        return {name: run.summary() for name, run in self.runs.items()}


def _fmt(value: float | None) -> str:
    return "-" if value is None else f"{value:.0f}"


def compare_algorithms(
    factories: Mapping[str, AlgorithmFactory] | Iterable[str],
    bound: BoundQuery,
    *,
    verify: bool = True,
) -> ComparisonReport:
    """Run all ``factories`` on ``bound`` and collect a report.

    ``factories`` is a name → factory mapping, or an iterable of names
    resolved against the default algorithm registry (compatibility shim
    over the session layer — :meth:`repro.Session.compare` is the
    service-level equivalent).  Each algorithm gets a fresh
    :class:`VirtualClock` so costs are independent.  With ``verify``
    (default) the report checks all final result sets are identical — the
    completeness/correctness obligation all algorithms share.
    """
    if not isinstance(factories, Mapping):
        from repro.session.registry import default_registry

        registry = default_registry()
        factories = {name: registry.resolve(name) for name in factories}
    runs = {
        name: run_algorithm(factory, bound) for name, factory in factories.items()
    }
    report = ComparisonReport(runs)
    if verify:
        report.verify_agreement()
    return report
