"""Deterministic virtual cost clock.

The paper reports wall-clock seconds of a 2009 Java implementation at
N = 500K.  A pure-Python reproduction cannot (and should not) chase those
absolute numbers, so every algorithm in this library charges its abstract
work — join build/probe steps, mapping evaluations, dominance comparisons,
partition bookkeeping — to a :class:`VirtualClock`.  Progressiveness curves
and total-cost comparisons are then reported in *virtual time units*, which
are deterministic across machines and runs, while preserving exactly the
relative behaviour the paper's figures show.
"""

from __future__ import annotations

from typing import Callable, Mapping

#: Default weight per operation kind.  Dominance comparisons and join steps
#: are the work the paper's wall-clock measurements are dominated by; the
#: bookkeeping ops of the ProgXe framework are charged too so that "ordering
#: overhead is negligible" (§VI-B) is a measured claim, not an artefact.
DEFAULT_WEIGHTS: dict[str, float] = {
    "join_build": 1.0,
    "join_probe": 1.0,
    "join_result": 1.0,
    "map": 1.0,
    "dominance_cmp": 1.0,
    "sort_step": 1.0,
    "partition_op": 0.25,
    "graph_op": 0.25,
    "queue_op": 0.25,
    "discard": 0.25,
    "cache_op": 0.25,
}


class VirtualClock:
    """Weighted operation counter posing as a clock.

    A *tripwire* may be installed (see :meth:`set_tripwire`): a zero-argument
    callable invoked after every charge.  The session layer uses it to abort
    an algorithm cooperatively mid-run — the tripwire raises once a budget is
    exhausted or the stream is cancelled, and the exception propagates out of
    the algorithm's generator at its very next unit of charged work.
    """

    __slots__ = ("weights", "counts", "_time", "_tripwire")

    def __init__(self, weights: Mapping[str, float] | None = None) -> None:
        self.weights = dict(DEFAULT_WEIGHTS)
        if weights:
            self.weights.update(weights)
        self.counts: dict[str, int] = {}
        self._time = 0.0
        self._tripwire: Callable[[], None] | None = None

    def charge(self, kind: str, units: int = 1) -> None:
        """Record ``units`` operations of ``kind``."""
        self.counts[kind] = self.counts.get(kind, 0) + units
        self._time += self.weights.get(kind, 1.0) * units
        if self._tripwire is not None:
            self._tripwire()

    def merge(self, counts: Mapping[str, int]) -> None:
        """Fold a batch of per-kind counts into this clock at once.

        The aggregation entry point for work performed *elsewhere* — a
        sharded kernel merges each worker process's charge deltas into the
        coordinator clock here, so total counts (and therefore virtual
        time) match a single-process run that did the same work.  Weighting
        uses **this** clock's weights, and the tripwire fires once after
        the whole batch (a budget can therefore cut between regions, never
        inside one worker's already-finished charge set).
        """
        if not counts:
            return
        for kind, units in counts.items():
            self.counts[kind] = self.counts.get(kind, 0) + units
            self._time += self.weights.get(kind, 1.0) * units
        if self._tripwire is not None:
            self._tripwire()

    def set_tripwire(self, hook: Callable[[], None] | None) -> None:
        """Install (or with ``None``, remove) the post-charge hook."""
        self._tripwire = hook

    def charger(self, kind: str) -> Callable[[], None]:
        """A zero-argument callback charging one ``kind`` op (for hot loops)."""
        def tick() -> None:
            self.charge(kind)
        return tick

    def now(self) -> float:
        """Current virtual time (weighted op count)."""
        return self._time

    def count(self, kind: str) -> int:
        """Total operations of ``kind`` charged so far."""
        return self.counts.get(kind, 0)

    def total_operations(self) -> int:
        """Unweighted total of all charged operations."""
        return sum(self.counts.values())

    def snapshot(self) -> dict[str, int]:
        """Copy of the per-kind counters."""
        return dict(self.counts)

    def since(self, snapshot: Mapping[str, int]) -> dict[str, int]:
        """Per-kind charge deltas relative to an earlier :meth:`snapshot`.

        Kinds whose counter did not move are omitted, so the result is the
        exact work performed in the window — the execution kernel uses this
        for per-step charge accounting and the scheduler for per-query
        fairness bookkeeping.
        """
        return {
            kind: total - snapshot.get(kind, 0)
            for kind, total in self.counts.items()
            if total != snapshot.get(kind, 0)
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(t={self._time:.0f}, {self.counts})"
