"""Terminal rendering of progressiveness curves.

The paper's figures plot cumulative results against time per algorithm.
:func:`ascii_curve` renders the same picture as a text chart so examples
and benchmark logs can show the *shape* without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

Series = Sequence[tuple[float, int]]

#: Plot glyphs assigned to series in order.
_GLYPHS = "*o+x#@%&"


def ascii_curve(
    series: Mapping[str, Series],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Render cumulative-results-vs-time curves as a text chart.

    ``series`` maps a label to ``(time, cumulative count)`` samples (as
    produced by :meth:`~repro.runtime.recorder.ProgressRecorder.curve`).
    Later samples overwrite earlier glyphs at the same cell; each series
    gets a distinct glyph, listed in the legend.
    """
    if not series:
        raise ValueError("ascii_curve needs at least one series")
    if width < 8 or height < 4:
        raise ValueError("chart too small to be legible")

    t_max = max((pt[0] for s in series.values() for pt in s), default=0.0)
    y_max = max((pt[1] for s in series.values() for pt in s), default=0)
    t_max = t_max or 1.0
    y_max = y_max or 1

    cells = [[" "] * width for _ in range(height)]
    for idx, (label, points) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for t, count in points:
            col = min(width - 1, int(t / t_max * (width - 1)))
            row = min(height - 1, int(count / y_max * (height - 1)))
            cells[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max}"
    lines.append(f"{top_label:>8} +" + "-" * width + "+")
    for i, row_cells in enumerate(cells):
        label = " " * 8
        if i == height - 1:
            label = f"{0:>8}"
        lines.append(f"{label} |" + "".join(row_cells) + "|")
    lines.append(" " * 9 + "+" + "-" * width + "+")
    lines.append(" " * 9 + f"t=0{'':>{max(0, width - 12)}}t={t_max:.0f}")
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {label}" for i, label in enumerate(series)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def crossover_time(
    leader: Series, chaser: Series
) -> float | None:
    """Earliest time at which ``chaser``'s cumulative count catches up to
    (or overtakes) ``leader``'s, given both sampled on any time points.

    Returns ``None`` if the chaser never catches up within the sampled
    horizon.  Used to quantify "who wins until when" in the figure
    narratives.
    """
    if not leader or not chaser:
        return None

    def count_at(series: Series, t: float) -> int:
        best = 0
        for ts, c in series:
            if ts <= t:
                best = c
            else:
                break
        return best

    times = sorted({t for t, _ in leader} | {t for t, _ in chaser})
    ahead_once = False
    for t in times:
        lead_c = count_at(leader, t)
        chase_c = count_at(chaser, t)
        if lead_c > chase_c:
            ahead_once = True
        elif ahead_once and chase_c >= lead_c:
            return t
    return None
