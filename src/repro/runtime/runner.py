"""Algorithm execution harness.

Every algorithm in the library follows one protocol: construct with a
:class:`~repro.query.smj.BoundQuery` and a
:class:`~repro.runtime.clock.VirtualClock`, then expose ``run()`` as a
generator yielding :class:`~repro.query.smj.ResultTuple` objects *at the
moment they are safe to report*.  The runner consumes that generator while
recording every emission, producing the raw material of the paper's
progressiveness figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Protocol

from repro.query.smj import BoundQuery, ResultTuple
from repro.runtime.clock import VirtualClock
from repro.runtime.recorder import ProgressRecorder


class Algorithm(Protocol):
    """Protocol implemented by every SMJ evaluation algorithm."""

    name: str

    def run(self) -> Iterator[ResultTuple]:
        """Yield final-skyline results progressively."""
        ...


AlgorithmFactory = Callable[[BoundQuery, VirtualClock], Algorithm]


@dataclass
class RunResult:
    """Everything observed while running one algorithm on one workload."""

    name: str
    results: list[ResultTuple]
    recorder: ProgressRecorder
    clock: VirtualClock
    algorithm: Any

    @property
    def result_keys(self) -> set[tuple]:
        """Identity keys of the result set (for cross-algorithm comparison)."""
        return {r.key() for r in self.results}

    def summary(self) -> dict[str, float | int | None]:
        """Scalar progressiveness/cost summary of the run."""
        rec = self.recorder
        return {
            "results": rec.total_results,
            "total_vtime": rec.total_vtime,
            "time_to_first": rec.time_to_first(),
            "time_to_25pct": rec.time_to_fraction(0.25),
            "time_to_50pct": rec.time_to_fraction(0.50),
            "time_to_75pct": rec.time_to_fraction(0.75),
            "auc": rec.progressiveness_auc(),
            "batches": rec.batch_count(),
            "dominance_cmps": rec.clock.count("dominance_cmp"),
            "wall_seconds": rec.finished_wall,
        }


def run_algorithm(
    factory: AlgorithmFactory,
    bound: BoundQuery,
    *,
    clock: VirtualClock | None = None,
    budget=None,
) -> RunResult:
    """Run one algorithm, recording every emission.

    Compatibility shim over the session layer: builds a
    :class:`~repro.session.stream.ResultStream`, drains it, and adapts the
    outcome.  An optional :class:`~repro.session.stream.StreamBudget` stops
    the run cleanly once a ceiling is hit; the partial prefix it returns is
    still provably correct.  Prefer
    :meth:`repro.Session.execute` for streaming consumption.
    """
    from repro.session.stream import ResultStream

    clock = clock or VirtualClock()
    algorithm = factory(bound, clock)
    stream = ResultStream(algorithm, clock, budget=budget)
    stream.drain()
    return stream.to_run_result()
