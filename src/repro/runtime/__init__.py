"""Runtime substrate: virtual clock, progressiveness recording, harnesses."""

from repro.runtime.clock import DEFAULT_WEIGHTS, VirtualClock
from repro.runtime.compare import ComparisonReport, compare_algorithms
from repro.runtime.plots import ascii_curve, crossover_time
from repro.runtime.recorder import (
    EmissionEvent,
    InterleaveEvent,
    InterleaveRecorder,
    ProgressRecorder,
)
from repro.runtime.runner import (
    Algorithm,
    AlgorithmFactory,
    RunResult,
    run_algorithm,
)

__all__ = [
    "Algorithm",
    "AlgorithmFactory",
    "ComparisonReport",
    "DEFAULT_WEIGHTS",
    "EmissionEvent",
    "InterleaveEvent",
    "InterleaveRecorder",
    "ProgressRecorder",
    "RunResult",
    "ascii_curve",
    "crossover_time",
    "VirtualClock",
    "compare_algorithms",
    "run_algorithm",
]
